"""CLI tests: drive ``blockbench`` in-process through ``main``."""

import json

import pytest

from repro.cli import PLATFORM_NAMES, WORKLOAD_NAMES, main


def test_list_names_every_platform_and_workload(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in PLATFORM_NAMES + WORKLOAD_NAMES:
        assert name in out


def test_list_output_is_registry_driven(capsys):
    """A platform registered at runtime shows up in ``list``."""
    from repro.registry import PLATFORMS, register_platform

    @register_platform("listedchain")
    def build_listed(node_id, scheduler, network, rng, config, ids, storage):
        raise NotImplementedError

    try:
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "listedchain" in out
        assert "consensus protocols:" in out
        assert "pbft" in out
    finally:
        PLATFORMS.unregister("listedchain")


def test_run_prints_summary_table(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hyperledger / ycsb" in out
    assert "throughput (tx/s)" in out
    assert "confirmed" in out


def test_run_json_output_is_parseable(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "donothing",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["platform"] == "hyperledger"
    assert payload["confirmed"] > 0
    assert payload["throughput_tx_s"] > 0
    assert payload["main_branch_blocks"] <= payload["total_blocks"]


def test_run_crash_flag_kills_quorum(capsys):
    """Crashing 2 of 4 PBFT nodes mid-run halts commits (quorum 3)."""
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "10",
            "--crash", "2",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    # The run still reports, and well under the full offered load landed.
    assert payload["confirmed"] < 10 * 2 * 40


def test_run_crash_recovery_flags_report_recovery(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "16",
            "--crash", "1",
            "--crash-at", "5",
            "--recover-at", "9",
            "--recovery-mode", "cold",
            "--failover",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["safety_violations"] == 0
    assert "server-0" in payload["recovery_time_s"]
    assert payload["recovery_time_s"]["server-0"] > 0
    assert payload["sync_bytes"] > 0


def test_run_recovery_table_has_recovery_rows(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "donothing",
            "--servers", "4",
            "--clients", "2",
            "--rate", "20",
            "--duration", "14",
            "--crash", "1",
            "--crash-at", "4",
            "--recover-at", "8",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "recovery server-0 (s)" in out
    assert "sync traffic" in out


def test_run_recover_at_requires_crash(capsys):
    code = main(["run", "--recover-at", "5"])
    assert code == 2
    assert "--crash" in capsys.readouterr().err


def test_run_subscribe_on_polling_platform_fails_cleanly(capsys):
    code = main(
        [
            "run",
            "--platform", "ethereum",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "10",
            "--duration", "3",
            "--subscribe",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "publish/subscribe" in err


def test_run_export_dir_writes_csv_series(tmp_path, capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
            "--export-dir", str(tmp_path / "out"),
            "--json",
        ]
    )
    assert code == 0
    names = {p.name for p in (tmp_path / "out").iterdir()}
    assert names == {
        "summary.csv", "queue.csv", "latency_cdf.csv", "commits.csv", "run.csv",
    }
    summary = (tmp_path / "out" / "summary.csv").read_text().splitlines()
    assert summary[0].startswith("platform,")
    assert len(summary) == 2


def test_attack_json_reports_fork_metrics(capsys):
    code = main(
        [
            "attack",
            "--platform", "ethereum",
            "--servers", "4",
            "--clients", "2",
            "--rate", "10",
            "--start", "10",
            "--length", "15",
            "--total", "40",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_blocks"] >= payload["main_branch_blocks"]
    assert 0.0 < payload["fork_ratio"] <= 1.0


def _write_suite_file(path, rates=(20, 40)):
    path.write_text(
        json.dumps(
            {
                "name": "cli-suite",
                "scenarios": [
                    {
                        "name": "sweep",
                        "platforms": ["hyperledger", "erisdb"],
                        "workloads": "ycsb",
                        "servers": 4,
                        "clients": 2,
                        "rates": list(rates),
                        "durations": 5,
                        "seeds": 1,
                    }
                ],
            }
        )
    )


def test_suite_runs_scenario_file_and_prints_grid(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_suite_file(scenario)
    assert main(["suite", str(scenario)]) == 0
    captured = capsys.readouterr()
    assert "suite cli-suite: 4 runs" in captured.out
    assert "hyperledger" in captured.out and "erisdb" in captured.out
    # Serial mode narrates progress on stderr.
    assert "[1/4]" in captured.err and "[4/4]" in captured.err


def test_suite_json_output_merges_all_runs(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_suite_file(scenario)
    assert main(["suite", str(scenario), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["suite"] == "cli-suite"
    assert payload["runs"] == 4
    platforms = {run["platform"] for run in payload["results"]}
    assert platforms == {"hyperledger", "erisdb"}
    assert all(run["confirmed"] > 0 for run in payload["results"])


def test_suite_export_dir_writes_merged_csv(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_suite_file(scenario, rates=(20,))
    out_dir = tmp_path / "out"
    assert main(["suite", str(scenario), "--export-dir", str(out_dir)]) == 0
    names = {p.name for p in out_dir.iterdir()}
    assert names == {"grid.csv", "summary.csv"}


def test_suite_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["suite", str(tmp_path / "nope.json")]) == 2
    assert "scenario file not found" in capsys.readouterr().err


def _write_quick_suite_file(path, rates=(20, 40)):
    """A donothing-based grid: faster than _write_suite_file's ycsb."""
    path.write_text(
        json.dumps(
            {
                "name": "store-suite",
                "scenarios": [
                    {
                        "name": "sweep",
                        "platforms": "hyperledger",
                        "workloads": "donothing",
                        "servers": 2,
                        "clients": 2,
                        "rates": list(rates),
                        "durations": 3,
                        "seeds": 1,
                    }
                ],
            }
        )
    )


def test_suite_out_dir_then_resume_reruns_only_missing(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_quick_suite_file(scenario)
    out_dir = tmp_path / "store"
    assert main(["suite", str(scenario), "--out-dir", str(out_dir), "--json"]) == 0
    captured = capsys.readouterr()
    first = json.loads(captured.out)
    assert "executed 2, resumed 0 of 2 runs" in captured.err
    run_files = sorted((out_dir / "runs").glob("*.json"))
    assert len(run_files) == 2
    run_files[0].unlink()  # simulate a killed campaign
    assert main(
        ["suite", str(scenario), "--out-dir", str(out_dir), "--resume", "--json"]
    ) == 0
    captured = capsys.readouterr()
    assert "executed 1, resumed 1 of 2 runs" in captured.err
    # The merged payload is identical to the uninterrupted run's.
    assert json.loads(captured.out) == first


def test_suite_resume_without_out_dir_fails(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_quick_suite_file(scenario)
    assert main(["suite", str(scenario), "--resume"]) == 2
    assert "--resume requires --out-dir" in capsys.readouterr().err


def test_suite_compare_identical_stores_exits_zero(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_quick_suite_file(scenario)
    for name in ("a", "b"):
        assert main(
            ["suite", str(scenario), "--out-dir", str(tmp_path / name)]
        ) == 0
    capsys.readouterr()
    code = main(
        ["suite", "--compare", str(tmp_path / "a"), str(tmp_path / "b"),
         "--threshold", "0.01", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["compared"] == 2
    assert payload["regressed"] == 0


def test_suite_compare_gates_on_regression(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_quick_suite_file(scenario)
    for name in ("a", "b"):
        assert main(
            ["suite", str(scenario), "--out-dir", str(tmp_path / name)]
        ) == 0
    victim = sorted((tmp_path / "b" / "runs").glob("*.json"))[0]
    data = json.loads(victim.read_text())
    data["summary"]["throughput_tx_s"] *= 0.5
    victim.write_text(json.dumps(data))
    capsys.readouterr()
    code = main(["suite", "--compare", str(tmp_path / "a"), str(tmp_path / "b")])
    assert code == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "suite compare FAILED" in captured.err


def test_suite_compare_missing_store_fails_cleanly(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_quick_suite_file(scenario)
    assert main(["suite", str(scenario), "--out-dir", str(tmp_path / "a")]) == 0
    capsys.readouterr()
    code = main(
        ["suite", "--compare", str(tmp_path / "a"), str(tmp_path / "nope")]
    )
    assert code == 2
    assert "not a suite result directory" in capsys.readouterr().err


def test_suite_compare_rejects_scenario_file_argument(tmp_path, capsys):
    assert main(
        ["suite", "extra.json", "--compare", str(tmp_path), str(tmp_path)]
    ) == 2
    assert "no scenario file" in capsys.readouterr().err


def test_suite_compare_rejects_run_mode_flags(tmp_path, capsys):
    code = main(
        ["suite", "--compare", str(tmp_path), str(tmp_path),
         "--export-dir", "out", "--resume"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "--export-dir" in err and "--resume" in err
    assert "not with --compare" in err


def test_suite_threshold_outside_compare_rejected(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_quick_suite_file(scenario)
    assert main(["suite", str(scenario), "--threshold", "0.1"]) == 2
    assert "--threshold only applies to --compare" in capsys.readouterr().err


def test_run_accepts_driver_knobs_and_client_mode(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "donothing",
            "--servers", "2",
            "--clients", "1",
            "--rate", "20",
            "--duration", "5",
            "--poll-interval", "0.25",
            "--threads", "8",
            "--retry-interval", "0.1",
            "--client-mode", "callback",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["confirmed"] > 0


def _fake_baseline(tmp_path, ops_per_s):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "schema": "blockbench-perf/1",
                "git_rev": "test",
                "results": [
                    {
                        "name": "scheduler_events",
                        "ops": 1,
                        "unit": "events",
                        "wall_time_s": 1.0,
                        "ops_per_s": ops_per_s,
                    }
                ],
            }
        )
    )
    return str(path)


def test_perf_gate_fails_on_regression(tmp_path, capsys):
    baseline = _fake_baseline(tmp_path, ops_per_s=1e15)  # unbeatable
    code = main(
        [
            "perf", "--quick", "--repeats", "1", "--no-write",
            "--only", "scheduler_events",
            "--baseline", baseline,
            "--fail-below", "scheduler_events=0.9",
        ]
    )
    assert code == 1
    assert "perf gate FAILED" in capsys.readouterr().err


def test_perf_gate_passes_against_modest_baseline(tmp_path, capsys):
    baseline = _fake_baseline(tmp_path, ops_per_s=1.0)  # trivially beaten
    code = main(
        [
            "perf", "--quick", "--repeats", "1", "--no-write",
            "--only", "scheduler_events",
            "--baseline", baseline,
            "--fail-below", "scheduler_events=0.9",
        ]
    )
    assert code == 0
    assert "speedup" in capsys.readouterr().out


def test_perf_gate_requires_baseline(capsys):
    code = main(
        ["perf", "--quick", "--no-write", "--fail-below", "driver_tx=0.5"]
    )
    assert code == 2
    assert "--fail-below requires --baseline" in capsys.readouterr().err


def test_perf_gate_rejects_malformed_spec(capsys):
    code = main(
        ["perf", "--quick", "--no-write", "--fail-below", "nonsense"]
    )
    assert code == 2
    assert "expected NAME=RATIO" in capsys.readouterr().err


def test_perf_rejects_non_object_baseline(tmp_path, capsys):
    """A baseline that parses as JSON but isn't a trajectory must fail
    with a message, not an AttributeError traceback."""
    bad = tmp_path / "list.json"
    bad.write_text("[1, 2, 3]")
    code = main(
        ["perf", "--quick", "--repeats", "1", "--no-write",
         "--only", "scheduler_events",
         "--baseline", str(bad), "--fail-below", "scheduler_events=0.5"]
    )
    assert code == 2
    assert "not a perf trajectory" in capsys.readouterr().err


def test_perf_rejects_baseline_missing_results_shape(tmp_path, capsys):
    bad = tmp_path / "shape.json"
    bad.write_text(json.dumps({"results": ["nameless"]}))
    code = main(
        ["perf", "--quick", "--no-write", "--baseline", str(bad)]
    )
    assert code == 2
    assert "not a perf trajectory" in capsys.readouterr().err


def test_perf_gate_fails_fast_when_baseline_lacks_benchmark(tmp_path, capsys):
    """The gated name is checked against the baseline BEFORE the
    (potentially minutes-long) benchmarks run."""
    baseline = _fake_baseline(tmp_path, ops_per_s=1.0)  # has scheduler_events
    code = main(
        ["perf", "--quick", "--repeats", "1", "--no-write",
         "--only", "trie_puts",
         "--baseline", baseline, "--fail-below", "trie_puts=0.5"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "no measurement for gated benchmark" in err
    assert "trie_puts" in err


def test_perf_gate_fails_fast_when_only_excludes_gate(tmp_path, capsys):
    baseline = _fake_baseline(tmp_path, ops_per_s=1.0)
    code = main(
        ["perf", "--quick", "--repeats", "1", "--no-write",
         "--only", "trie_puts",
         "--baseline", baseline, "--fail-below", "scheduler_events=0.5"]
    )
    assert code == 2
    assert "excluded by --only" in capsys.readouterr().err


def test_rejects_unknown_platform():
    with pytest.raises(SystemExit):
        main(["run", "--platform", "nosuchchain"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# ---------------------------------------------------------------------------
# Lifecycle tracing surfaces: run flags, report --bottleneck, list
# ---------------------------------------------------------------------------
_SHORT_RUN = [
    "run",
    "--platform", "hyperledger",
    "--workload", "ycsb",
    "--servers", "2",
    "--clients", "2",
    "--rate", "20",
    "--duration", "5",
    "--seed", "3",
]


def test_run_prints_bottleneck_table_by_default(capsys):
    assert main(list(_SHORT_RUN)) == 0
    out = capsys.readouterr().out
    assert "lifecycle stage breakdown" in out
    assert "bottleneck:" in out
    assert "mempool_wait" in out and "notification" in out
    assert "<--" in out  # the dominant-stage marker


def test_run_no_trace_stages_drops_the_breakdown(capsys):
    assert main(list(_SHORT_RUN) + ["--no-trace-stages"]) == 0
    out = capsys.readouterr().out
    assert "lifecycle stage breakdown" not in out
    assert "throughput (tx/s)" in out  # the summary itself is untouched


def test_run_json_carries_the_breakdown_and_dominant_stage(capsys):
    assert main(list(_SHORT_RUN) + ["--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dominant_stage"] in (
        "admission", "mempool_wait", "consensus", "execution",
        "state_commit", "notification",
    )
    breakdown = payload["stage_breakdown"]
    assert breakdown["traced"] > 0
    assert len(breakdown["stages"]) == 6


def test_run_json_omits_breakdown_when_tracing_off(capsys):
    assert main(list(_SHORT_RUN) + ["--no-trace-stages", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "stage_breakdown" not in payload
    assert "dominant_stage" not in payload


def test_run_read_ratio_flag_reaches_the_workload(capsys):
    assert main(list(_SHORT_RUN) + ["--read-ratio", "0.9", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["confirmed"] > 0


def test_run_read_ratio_on_fixed_mix_workload_fails_cleanly(capsys):
    code = main(
        ["run", "--platform", "hyperledger", "--workload", "donothing",
         "--servers", "2", "--clients", "2", "--rate", "20",
         "--duration", "5", "--read-ratio", "0.5"]
    )
    assert code == 2
    assert "fixed operation mix" in capsys.readouterr().err


def _bottleneck_store(tmp_path):
    scenario = tmp_path / "bneck.json"
    scenario.write_text(json.dumps({
        "name": "bneck",
        "scenarios": [{
            "name": "grid", "platforms": "hyperledger", "workloads": "ycsb",
            "servers": 2, "clients": 2, "rates": 20, "durations": 5,
            "seeds": 3, "read_ratios": [0.1, 0.9],
        }],
    }))
    out_dir = tmp_path / "results"
    assert main(["suite", str(scenario), "--out-dir", str(out_dir)]) == 0
    return out_dir


def test_report_bottleneck_renders_each_run(tmp_path, capsys):
    out_dir = _bottleneck_store(tmp_path)
    capsys.readouterr()
    assert main(["report", str(out_dir), "--bottleneck"]) == 0
    out = capsys.readouterr().out
    assert out.count("bottleneck:") == 2
    assert "rr=0.1" in out and "rr=0.9" in out
    assert "mempool_wait" in out


def test_report_bottleneck_json_names_dominant_stages(tmp_path, capsys):
    out_dir = _bottleneck_store(tmp_path)
    capsys.readouterr()
    assert main(["report", str(out_dir), "--bottleneck", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["runs"]) == 2
    for run in payload["runs"]:
        assert run["dominant_stage"] is not None
        assert run["stage_breakdown"]["traced"] > 0


def test_report_requires_a_mode_flag(tmp_path, capsys):
    assert main(["report", str(tmp_path)]) == 2
    assert "--bottleneck" in capsys.readouterr().err


def test_report_missing_store_fails_cleanly(tmp_path, capsys):
    code = main(["report", str(tmp_path / "nope"), "--bottleneck"])
    assert code == 2
    assert "not a suite result directory" in capsys.readouterr().err


def test_report_notes_untraced_runs(tmp_path, capsys):
    out_dir = _bottleneck_store(tmp_path)
    for path in (out_dir / "runs").glob("*.json"):
        data = json.loads(path.read_text())
        data["summary"].pop("stage_breakdown", None)
        path.write_text(json.dumps(data))
    capsys.readouterr()
    assert main(["report", str(out_dir), "--bottleneck"]) == 0
    captured = capsys.readouterr()
    assert "bottleneck:" not in captured.out
    assert "2 run(s) without a stage breakdown" in captured.err


def test_list_describes_consensus_and_byzantine_behaviors(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "pbft — One replica's view of the PBFT protocol." in out
    assert "byzantine behaviors:" in out
    for behavior in ("equivocate", "silent", "garbage_digest", "delay_votes"):
        assert f"  {behavior} — " in out
