"""CLI tests: drive ``blockbench`` in-process through ``main``."""

import json

import pytest

from repro.cli import PLATFORM_NAMES, WORKLOAD_NAMES, main


def test_list_names_every_platform_and_workload(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in PLATFORM_NAMES + WORKLOAD_NAMES:
        assert name in out


def test_run_prints_summary_table(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hyperledger / ycsb" in out
    assert "throughput (tx/s)" in out
    assert "confirmed" in out


def test_run_json_output_is_parseable(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "donothing",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["platform"] == "hyperledger"
    assert payload["confirmed"] > 0
    assert payload["throughput_tx_s"] > 0
    assert payload["main_branch_blocks"] <= payload["total_blocks"]


def test_run_crash_flag_kills_quorum(capsys):
    """Crashing 2 of 4 PBFT nodes mid-run halts commits (quorum 3)."""
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "10",
            "--crash", "2",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    # The run still reports, and well under the full offered load landed.
    assert payload["confirmed"] < 10 * 2 * 40


def test_run_subscribe_on_polling_platform_fails_cleanly(capsys):
    code = main(
        [
            "run",
            "--platform", "ethereum",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "10",
            "--duration", "3",
            "--subscribe",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "publish/subscribe" in err


def test_run_export_dir_writes_csv_series(tmp_path, capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
            "--export-dir", str(tmp_path / "out"),
            "--json",
        ]
    )
    assert code == 0
    names = {p.name for p in (tmp_path / "out").iterdir()}
    assert names == {
        "summary.csv", "queue.csv", "latency_cdf.csv", "commits.csv", "run.csv",
    }
    summary = (tmp_path / "out" / "summary.csv").read_text().splitlines()
    assert summary[0].startswith("platform,")
    assert len(summary) == 2


def test_attack_json_reports_fork_metrics(capsys):
    code = main(
        [
            "attack",
            "--platform", "ethereum",
            "--servers", "4",
            "--clients", "2",
            "--rate", "10",
            "--start", "10",
            "--length", "15",
            "--total", "40",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_blocks"] >= payload["main_branch_blocks"]
    assert 0.0 < payload["fork_ratio"] <= 1.0


def test_rejects_unknown_platform():
    with pytest.raises(SystemExit):
        main(["run", "--platform", "nosuchchain"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
