"""Unit tests for the H-Store baseline engine."""

import random

import pytest

from repro.errors import BenchmarkError
from repro.hstore import (
    HStoreEngine,
    HStoreTxn,
    TxnOp,
    load_smallbank,
    load_ycsb,
    run_smallbank,
    run_ycsb,
    smallbank_txn,
    ycsb_txn,
)


def test_load_and_read():
    engine = HStoreEngine(4)
    engine.load("k", b"v")
    assert engine.get("k") == b"v"


def test_partitioning_is_stable():
    engine = HStoreEngine(8)
    assert engine.partition_of("key") == engine.partition_of("key")
    partitions = {engine.partition_of(f"k{i}") for i in range(200)}
    assert len(partitions) == 8  # all partitions get keys


def test_execute_reads_and_writes():
    engine = HStoreEngine(4)
    engine.load("a", b"1")
    result = engine.execute(
        HStoreTxn(ops=[TxnOp("read", "a"), TxnOp("write", "b", b"2")])
    )
    assert result.committed
    assert result.reads["a"] == b"1"
    assert engine.get("b") == b"2"


def test_write_none_deletes():
    engine = HStoreEngine(2)
    engine.load("a", b"1")
    engine.execute(HStoreTxn(ops=[TxnOp("write", "a", None)]))
    assert engine.get("a") is None


def test_single_vs_multi_partition_classified():
    engine = HStoreEngine(16)
    keys = [f"k{i}" for i in range(100)]
    same = next(
        (a, b)
        for a in keys
        for b in keys
        if a != b and engine.partition_of(a) == engine.partition_of(b)
    )
    different = next(
        (a, b)
        for a in keys
        for b in keys
        if engine.partition_of(a) != engine.partition_of(b)
    )
    engine.execute(HStoreTxn(ops=[TxnOp("read", same[0]), TxnOp("read", same[1])]))
    assert engine.single_partition_txns == 1
    engine.execute(
        HStoreTxn(ops=[TxnOp("read", different[0]), TxnOp("read", different[1])])
    )
    assert engine.multi_partition_txns == 1


def test_multi_partition_latency_higher():
    engine = HStoreEngine(16)
    single = engine.execute(HStoreTxn(ops=[TxnOp("read", "a")]))
    keys = [f"k{i}" for i in range(50)]
    a, b = next(
        (x, y) for x in keys for y in keys
        if engine.partition_of(x) != engine.partition_of(y)
    )
    multi = engine.execute(HStoreTxn(ops=[TxnOp("read", a), TxnOp("read", b)]))
    assert multi.latency_s > single.latency_s * 2


def test_empty_txn_rejected():
    with pytest.raises(BenchmarkError):
        HStoreEngine(2).execute(HStoreTxn(ops=[]))


def test_bad_op_kind_rejected():
    with pytest.raises(BenchmarkError):
        HStoreEngine(2).execute(HStoreTxn(ops=[TxnOp("upsert", "k", b"v")]))


def test_invalid_partition_count():
    with pytest.raises(BenchmarkError):
        HStoreEngine(0)


def test_throughput_metrics():
    engine = HStoreEngine(8)
    load_ycsb(engine, 1000)
    run_ycsb(engine, 5000, 1000)
    assert engine.committed == 5000
    assert engine.throughput_tx_s() > 50_000  # in-memory speed class
    assert engine.mean_latency_s() < 0.001  # sub-millisecond


def test_figure14_shape_ycsb_vs_smallbank():
    """YCSB >> Smallbank on H-Store due to 2PC (paper's 6.6x)."""
    ycsb = HStoreEngine(8)
    load_ycsb(ycsb, 5000)
    run_ycsb(ycsb, 10_000, 5000)
    bank = HStoreEngine(8)
    load_smallbank(bank, 5000)
    run_smallbank(bank, 10_000, 5000)
    ratio = ycsb.throughput_tx_s() / bank.throughput_tx_s()
    assert 3.0 < ratio < 15.0
    assert bank.multi_partition_txns > 0


def test_smallbank_generator_covers_procedures():
    rng = random.Random(3)
    names = {smallbank_txn(rng, 100).name for _ in range(500)}
    assert names == {
        "send_payment",
        "amalgamate",
        "write_check",
        "transact_savings",
        "deposit_checking",
        "balance",
    }


def test_ycsb_generator_mix():
    rng = random.Random(3)
    names = {ycsb_txn(rng, 100).name for _ in range(100)}
    assert names == {"ycsb-read", "ycsb-write"}


def test_reset_metrics():
    engine = HStoreEngine(4)
    engine.execute(HStoreTxn(ops=[TxnOp("read", "x")]))
    engine.reset_metrics()
    assert engine.committed == 0
    assert engine.elapsed_s() == 0.0
