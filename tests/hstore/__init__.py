"""Tests for the hstore layer."""
