"""Unit tests for the fork-aware chain store."""

import pytest

from repro.chain import Block, Blockchain, Transaction
from repro.crypto import EMPTY_HASH
from repro.errors import InvalidBlock


def _block(parent, height, tag, txs=()):
    return Block.build(
        height, parent.hash, list(txs), EMPTY_HASH, f"m{tag}", float(height), {"tag": tag}
    )


def _tx(i):
    return Transaction.create("s", "c", "f", (i,), nonce=i)


def test_new_chain_has_genesis_tip():
    chain = Blockchain()
    assert chain.height == 0
    assert chain.tip is chain.genesis


def test_linear_extension():
    chain = Blockchain()
    b1 = _block(chain.genesis, 1, "a")
    b2 = _block(b1, 2, "b")
    assert chain.add_block(b1)
    assert chain.add_block(b2)
    assert chain.height == 2
    assert chain.tip.hash == b2.hash


def test_duplicate_block_ignored():
    chain = Blockchain()
    b1 = _block(chain.genesis, 1, "a")
    assert chain.add_block(b1)
    assert not chain.add_block(b1)
    assert chain.total_blocks == 1


def test_wrong_height_rejected():
    chain = Blockchain()
    bad = Block.build(5, chain.genesis.hash, [], EMPTY_HASH, "m", 1.0)
    with pytest.raises(InvalidBlock):
        chain.add_block(bad)


def test_fork_does_not_reorg_when_not_longer():
    chain = Blockchain()
    b1 = _block(chain.genesis, 1, "a")
    b1_rival = _block(chain.genesis, 1, "rival")
    chain.add_block(b1)
    assert not chain.add_block(b1_rival)
    assert chain.tip.hash == b1.hash
    assert chain.fork_blocks == 1


def test_longer_branch_wins():
    chain = Blockchain()
    b1 = _block(chain.genesis, 1, "a")
    chain.add_block(b1)
    r1 = _block(chain.genesis, 1, "r1")
    r2 = _block(r1, 2, "r2")
    chain.add_block(r1)
    assert chain.add_block(r2)  # reorg onto the rival branch
    assert chain.tip.hash == r2.hash
    assert chain.on_main_branch(r1.hash)
    assert not chain.on_main_branch(b1.hash)


def test_fork_ratio():
    chain = Blockchain()
    b1 = _block(chain.genesis, 1, "a")
    chain.add_block(b1)
    chain.add_block(_block(chain.genesis, 1, "rival"))
    assert chain.total_blocks == 2
    assert chain.main_branch_blocks == 1
    assert chain.fork_ratio() == 0.5


def test_fork_ratio_empty_chain():
    assert Blockchain().fork_ratio() == 1.0


def test_orphans_connect_when_parent_arrives():
    chain = Blockchain()
    b1 = _block(chain.genesis, 1, "a")
    b2 = _block(b1, 2, "b")
    assert not chain.add_block(b2)  # parent unknown: orphaned
    assert chain.orphan_count() == 1
    assert chain.add_block(b1)  # connects both
    assert chain.height == 2
    assert chain.orphan_count() == 0


def test_block_by_height_and_range():
    chain = Blockchain()
    parent = chain.genesis
    for h in range(1, 6):
        parent = _block(parent, h, f"x{h}", [_tx(h)])
        chain.add_block(parent)
    assert chain.block_by_height(3).height == 3
    assert chain.block_by_height(99) is None
    blocks = chain.blocks_in_range(1, 4)  # (1, 4] => heights 2,3,4
    assert [b.height for b in blocks] == [2, 3, 4]
    txs = list(chain.transactions_in_range(0, 5))
    assert len(txs) == 5


def test_main_branch_iteration():
    chain = Blockchain()
    b1 = _block(chain.genesis, 1, "a")
    chain.add_block(b1)
    heights = [b.height for b in chain.main_branch()]
    assert heights == [0, 1]


def test_deep_reorg_after_partition_heals():
    """Two isolated branches race; the longer one wins on heal."""
    chain = Blockchain()
    # Branch A: 3 blocks.
    parent = chain.genesis
    branch_a = []
    for h in range(1, 4):
        parent = _block(parent, h, f"a{h}")
        branch_a.append(parent)
        chain.add_block(parent)
    # Branch B: 5 blocks built privately, then delivered.
    parent = chain.genesis
    for h in range(1, 6):
        parent = _block(parent, h, f"b{h}")
        chain.add_block(parent)
    assert chain.height == 5
    assert chain.tip.header.meta("tag") == "b5"
    assert chain.fork_blocks == 3
    assert all(not chain.on_main_branch(b.hash) for b in branch_a)
