"""Property-based tests for the mempool against a model implementation.

The mempool sits between admission and every consensus protocol, so
its invariants (FIFO order, deduplication, capacity, batch bounds)
must hold for arbitrary operation sequences, not just the happy paths
the unit tests walk.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Mempool, Transaction


def tx(i: int) -> Transaction:
    return Transaction.create(f"c{i % 3}", "kv", "write", (i,), nonce=i)


ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 40)),
        st.tuples(st.just("remove"), st.integers(0, 40)),
        st.tuples(st.just("peek"), st.integers(1, 10)),
    ),
    max_size=120,
)


@settings(max_examples=150, deadline=None)
@given(operations=ops, capacity=st.one_of(st.none(), st.integers(1, 20)))
def test_mempool_matches_ordered_dict_model(operations, capacity):
    """The pool behaves as a FIFO dict with a size cap, always."""
    pool = Mempool(capacity)
    model: dict[str, Transaction] = {}
    for op, arg in operations:
        t = tx(arg)
        if op == "add":
            accepted = pool.add(t, now=0.0)
            should_accept = t.tx_id not in model and (
                capacity is None or len(model) < capacity
            )
            assert accepted == should_accept
            if accepted:
                model[t.tx_id] = t
        elif op == "remove":
            pool.remove([t.tx_id])
            model.pop(t.tx_id, None)
        else:  # peek
            batch = pool.peek_batch(arg)
            expected = list(model.values())[:arg]
            assert [b.tx_id for b in batch] == [e.tx_id for e in expected]
        assert len(pool) == len(model)
        for tx_id in model:
            assert tx_id in pool


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(0, 60),
    budget=st.integers(1_000, 200_000),
    limit=st.integers(1, 30),
)
def test_peek_batch_never_exceeds_gas_budget(n, budget, limit):
    pool = Mempool()
    for i in range(n):
        pool.add(tx(i))
    estimate = lambda t: 26_000  # noqa: E731 - the platform default
    batch = pool.peek_batch(limit, gas_budget=budget, gas_estimate=estimate)
    assert len(batch) <= limit
    assert sum(estimate(t) for t in batch) <= max(budget, 26_000)
    # FIFO prefix: the batch is exactly the head of the queue.
    assert [b.tx_id for b in batch] == [
        t.tx_id for t in pool.peek_batch(len(batch))
    ]


@settings(max_examples=60, deadline=None)
@given(
    arrivals=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
    ),
    now_delta=st.floats(min_value=0.0, max_value=50.0),
)
def test_oldest_age_is_first_arrival(arrivals, now_delta):
    """The watchdog age is measured from the FIFO head, whatever the
    arrival times were (PBFT's request timeout depends on this)."""
    pool = Mempool()
    for i, at in enumerate(arrivals):
        pool.add(tx(i), now=at)
    now = max(arrivals) + now_delta
    assert pool.oldest_pending_age(now) == now - arrivals[0]
