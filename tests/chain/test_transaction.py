"""Unit tests for transactions and receipts."""

from repro.chain import Transaction, TxStatus


def test_create_assigns_content_derived_id():
    tx1 = Transaction.create("alice", "kv", "write", (b"k", b"v"), nonce=1)
    tx2 = Transaction.create("alice", "kv", "write", (b"k", b"v"), nonce=1)
    assert tx1.tx_id == tx2.tx_id


def test_id_binds_every_field():
    base = Transaction.create("a", "c", "f", (1,), value=0, nonce=1)
    assert base.tx_id != Transaction.create("b", "c", "f", (1,), value=0, nonce=1).tx_id
    assert base.tx_id != Transaction.create("a", "d", "f", (1,), value=0, nonce=1).tx_id
    assert base.tx_id != Transaction.create("a", "c", "g", (1,), value=0, nonce=1).tx_id
    assert base.tx_id != Transaction.create("a", "c", "f", (2,), value=0, nonce=1).tx_id
    assert base.tx_id != Transaction.create("a", "c", "f", (1,), value=5, nonce=1).tx_id
    assert base.tx_id != Transaction.create("a", "c", "f", (1,), value=0, nonce=2).tx_id


def test_auto_nonce_distinguishes_identical_calls():
    tx1 = Transaction.create("alice", "kv", "write", (b"k", b"v"))
    tx2 = Transaction.create("alice", "kv", "write", (b"k", b"v"))
    assert tx1.tx_id != tx2.tx_id


def test_size_accounts_for_payload():
    small = Transaction.create("a", "c", "f", ())
    big = Transaction.create("a", "c", "f", ("x" * 500,))
    assert big.size_bytes() > small.size_bytes() + 400


def test_negative_value_supported():
    tx = Transaction.create("a", "c", "f", (), value=-5)
    assert tx.value == -5


def test_tx_status_latency():
    tx = Transaction.create("a", "c", "f", ())
    status = TxStatus(tx=tx, submitted_at=10.0)
    assert status.latency is None
    status.confirmed_at = 12.5
    assert status.latency == 2.5
