"""Unit tests for the mempool."""

from repro.chain import Mempool, Transaction


def _tx(i):
    return Transaction.create("s", "c", "f", (i,), nonce=i)


def test_add_and_len():
    pool = Mempool()
    assert pool.add(_tx(1))
    assert len(pool) == 1


def test_duplicates_rejected():
    pool = Mempool()
    tx = _tx(1)
    assert pool.add(tx)
    assert not pool.add(tx)
    assert len(pool) == 1


def test_capacity_enforced():
    pool = Mempool(capacity=2)
    assert pool.add(_tx(1))
    assert pool.add(_tx(2))
    assert not pool.add(_tx(3))
    assert pool.rejected_full == 1


def test_peek_batch_fifo_order():
    pool = Mempool()
    txs = [_tx(i) for i in range(5)]
    pool.add_many(txs)
    batch = pool.peek_batch(3)
    assert [t.tx_id for t in batch] == [t.tx_id for t in txs[:3]]
    assert len(pool) == 5  # peek does not remove


def test_peek_batch_respects_gas_budget():
    pool = Mempool()
    pool.add_many(_tx(i) for i in range(10))
    batch = pool.peek_batch(10, gas_budget=25, gas_estimate=lambda tx: 10)
    assert len(batch) == 2  # 10+10 fits; the third would cross the budget
    # First tx always admitted even if it alone exceeds the budget.
    batch_single = pool.peek_batch(10, gas_budget=5, gas_estimate=lambda tx: 10)
    assert len(batch_single) == 1


def test_remove_committed():
    pool = Mempool()
    txs = [_tx(i) for i in range(4)]
    pool.add_many(txs)
    removed = pool.remove([txs[0].tx_id, txs[2].tx_id, "unknown"])
    assert removed == 2
    assert len(pool) == 2


def test_contains():
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx)
    assert tx.tx_id in pool
    assert "nope" not in pool


def test_clear():
    pool = Mempool()
    pool.add_many(_tx(i) for i in range(3))
    pool.clear()
    assert len(pool) == 0
