"""Property-based tests for the fork-aware blockchain store.

The store is the substrate under every consensus protocol and the
Figure 10 fork metric; its invariants must survive arbitrary block
arrival orders and arbitrary fork topologies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Block, Blockchain
from repro.crypto import EMPTY_HASH


def make_tree(branching_choices):
    """Build a random block tree over a fresh chain.

    Each choice extends a (uniformly-chosen) existing block, producing
    arbitrary fork structures, and returns the blocks in creation order.
    """
    chain = Blockchain()
    blocks = [chain.tip]  # genesis
    built = []
    for i, choice in enumerate(branching_choices):
        parent = blocks[choice % len(blocks)]
        block = Block.build(
            height=parent.height + 1,
            parent_hash=parent.hash,
            transactions=[],
            state_root=EMPTY_HASH,
            proposer=f"n{i}",
            timestamp=float(i),
            consensus_meta={"i": str(i)},
        )
        blocks.append(block)
        built.append(block)
    return chain, built


tree_shapes = st.lists(st.integers(min_value=0, max_value=10_000), max_size=60)


@settings(max_examples=150, deadline=None)
@given(shape=tree_shapes, order_seed=st.randoms(use_true_random=False))
def test_arrival_order_does_not_change_census(shape, order_seed):
    """total/main-branch block counts are order-independent facts."""
    chain_a, blocks = make_tree(shape)
    for block in blocks:
        chain_a.add_block(block)

    chain_b = Blockchain()
    shuffled = list(blocks)
    order_seed.shuffle(shuffled)
    # Insert repeatedly: out-of-order children are orphans until their
    # parent lands, so a few passes deliver everything.
    for _ in range(len(shuffled) + 1):
        for block in shuffled:
            chain_b.add_block(block)

    assert chain_a.total_blocks == chain_b.total_blocks
    assert chain_a.height == chain_b.height
    assert chain_a.main_branch_blocks == chain_b.main_branch_blocks


@settings(max_examples=150, deadline=None)
@given(shape=tree_shapes)
def test_main_branch_is_a_connected_prefix(shape):
    chain, blocks = make_tree(shape)
    for block in blocks:
        chain.add_block(block)
    branch = [b for b in chain.main_branch() if b.height > 0]
    # Heights are 1..height with no gaps, each linking to its parent.
    assert [b.height for b in branch] == list(range(1, chain.height + 1))
    parent_hash = chain.block_by_height(0).hash
    for block in branch:
        assert block.header.parent_hash == parent_hash
        parent_hash = block.hash
    for block in branch:
        assert chain.on_main_branch(block.hash)


@settings(max_examples=150, deadline=None)
@given(shape=tree_shapes)
def test_census_identity(shape):
    """total = main + forks, and the ratio is main/total in [0, 1]."""
    chain, blocks = make_tree(shape)
    for block in blocks:
        chain.add_block(block)
    assert chain.total_blocks == chain.main_branch_blocks + chain.fork_blocks
    assert 0.0 <= chain.fork_ratio() <= 1.0
    if chain.fork_blocks == 0:
        assert chain.fork_ratio() == 1.0


@settings(max_examples=100, deadline=None)
@given(shape=tree_shapes)
def test_tip_is_a_longest_chain(shape):
    """No stored block sits strictly higher than the advertised tip."""
    chain, blocks = make_tree(shape)
    for block in blocks:
        chain.add_block(block)
    highest = max((b.height for b in blocks), default=0)
    assert chain.height == highest
    assert chain.tip.height == highest


@settings(max_examples=100, deadline=None)
@given(shape=tree_shapes, start=st.integers(0, 70), end=st.integers(0, 70))
def test_blocks_in_range_matches_main_branch(shape, start, end):
    chain, blocks = make_tree(shape)
    for block in blocks:
        chain.add_block(block)
    window = chain.blocks_in_range(start, end)
    expected = [
        b for b in chain.main_branch() if start < b.height <= end
    ]
    assert [b.hash for b in window] == [b.hash for b in expected]


@settings(max_examples=100, deadline=None)
@given(shape=tree_shapes)
def test_duplicate_insertion_is_idempotent(shape):
    chain, blocks = make_tree(shape)
    for block in blocks:
        chain.add_block(block)
    census = (chain.total_blocks, chain.height, chain.main_branch_blocks)
    for block in blocks:
        chain.add_block(block)
    assert (chain.total_blocks, chain.height, chain.main_branch_blocks) == census
