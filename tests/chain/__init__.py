"""Tests for the chain layer."""
