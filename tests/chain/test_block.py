"""Unit tests for blocks and headers."""

from repro.chain import Block, Transaction, genesis_block
from repro.crypto import EMPTY_HASH


def _tx(i=0):
    return Transaction.create("s", "c", "f", (i,), nonce=i)


def test_genesis_is_deterministic():
    assert genesis_block("x").hash == genesis_block("x").hash
    assert genesis_block("x").hash != genesis_block("y").hash


def test_genesis_height_zero_empty():
    g = genesis_block()
    assert g.height == 0
    assert g.transactions == []
    assert g.header.tx_root == EMPTY_HASH


def test_build_links_parent():
    g = genesis_block()
    block = Block.build(1, g.hash, [_tx()], EMPTY_HASH, "miner", 1.0)
    assert block.header.parent_hash == g.hash
    assert block.height == 1


def test_hash_covers_transactions():
    g = genesis_block()
    b1 = Block.build(1, g.hash, [_tx(1)], EMPTY_HASH, "m", 1.0)
    b2 = Block.build(1, g.hash, [_tx(2)], EMPTY_HASH, "m", 1.0)
    assert b1.hash != b2.hash


def test_hash_covers_consensus_meta():
    g = genesis_block()
    b1 = Block.build(1, g.hash, [], EMPTY_HASH, "m", 1.0, {"nonce": 1})
    b2 = Block.build(1, g.hash, [], EMPTY_HASH, "m", 1.0, {"nonce": 2})
    assert b1.hash != b2.hash


def test_meta_lookup():
    g = genesis_block()
    block = Block.build(1, g.hash, [], EMPTY_HASH, "m", 1.0, {"view": 3})
    assert block.header.meta("view") == "3"
    assert block.header.meta("absent", "dflt") == "dflt"


def test_meta_order_insensitive():
    g = genesis_block()
    b1 = Block.build(1, g.hash, [], EMPTY_HASH, "m", 1.0, {"a": 1, "b": 2})
    b2 = Block.build(1, g.hash, [], EMPTY_HASH, "m", 1.0, {"b": 2, "a": 1})
    assert b1.hash == b2.hash


def test_size_grows_with_transactions():
    g = genesis_block()
    empty = Block.build(1, g.hash, [], EMPTY_HASH, "m", 1.0)
    full = Block.build(1, g.hash, [_tx(i) for i in range(10)], EMPTY_HASH, "m", 1.0)
    assert full.size_bytes() > empty.size_bytes()
