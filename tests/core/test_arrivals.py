"""Arrival-process generators: validation, determinism, distribution.

The open-loop driver's workload is entirely defined by the
(gap, sender) stream an :class:`~repro.core.workload.ArrivalGenerator`
emits, so the stream itself must be pinned: same spec + same seed must
reproduce the identical sequence in-process and across interpreter
restarts (resumable suites re-create generators in fresh processes),
and the distributions must actually be what the spec names.
"""

import random
import subprocess
import sys
from collections import Counter

import pytest

from repro.core.workload import ARRIVAL_PROCESSES, ArrivalGenerator, ArrivalSpec
from repro.errors import BenchmarkError


def _gen(seed=7, **overrides) -> ArrivalGenerator:
    spec = ArrivalSpec(
        process=overrides.pop("process", "poisson"),
        rate_tx_s=overrides.pop("rate_tx_s", 100.0),
        accounts=overrides.pop("accounts", 1000),
        zipf_s=overrides.pop("zipf_s", 0.0),
    )
    assert not overrides
    return ArrivalGenerator(spec, random.Random(seed))


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "bad",
    [
        {"process": "pareto"},
        {"rate_tx_s": 0.0},
        {"rate_tx_s": -5.0},
        {"accounts": 0},
        {"accounts": -1},
        {"zipf_s": -0.5},
    ],
)
def test_degenerate_specs_rejected_at_construction(bad):
    base = dict(process="poisson", rate_tx_s=100.0, accounts=10, zipf_s=0.0)
    base.update(bad)
    with pytest.raises(BenchmarkError):
        ArrivalSpec(**base)


def test_from_dict_uses_json_key_names_and_round_trips():
    spec = ArrivalSpec.from_dict(
        {"process": "poisson", "rate": 500.0, "accounts": 100, "zipf_s": 1.1}
    )
    assert spec.rate_tx_s == 500.0
    assert ArrivalSpec.from_dict(spec.to_dict()) == spec


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(BenchmarkError, match="lambda"):
        ArrivalSpec.from_dict({"process": "poisson", "rate": 1.0, "lambda": 2})


def test_process_registry_is_exported():
    assert "poisson" in ARRIVAL_PROCESSES
    assert "uniform" in ARRIVAL_PROCESSES


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def test_same_seed_same_stream():
    first = _gen(seed=42).take(500)
    second = _gen(seed=42).take(500)
    assert first == second


def test_different_seeds_diverge():
    assert _gen(seed=1).take(50) != _gen(seed=2).take(50)


def test_stream_is_stable_across_process_restarts():
    """Resume and multi-process suites re-create generators in fresh
    interpreters; the stream may depend only on (spec, seed), never on
    hash randomization or interpreter state."""
    program = (
        "import random, json;"
        "from repro.core.workload import ArrivalSpec, ArrivalGenerator;"
        "spec = ArrivalSpec(process='poisson', rate_tx_s=250.0,"
        " accounts=5000, zipf_s=1.1);"
        "gen = ArrivalGenerator(spec, random.Random(99));"
        "print(json.dumps(gen.take(200)))"
    )
    outputs = [
        subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        for _ in range(2)
    ]
    assert outputs[0] == outputs[1]
    # And the in-process stream agrees with the subprocess one.
    import json

    in_process = _gen(seed=99, rate_tx_s=250.0, accounts=5000, zipf_s=1.1)
    assert json.loads(outputs[0]) == [list(pair) for pair in in_process.take(200)]


# ---------------------------------------------------------------------------
# Distribution shape
# ---------------------------------------------------------------------------
def test_poisson_gaps_average_inverse_rate():
    gaps = [gap for gap, _ in _gen(rate_tx_s=200.0).take(20_000)]
    assert all(gap >= 0.0 for gap in gaps)
    mean = sum(gaps) / len(gaps)
    assert mean == pytest.approx(1 / 200.0, rel=0.05)


def test_uniform_process_gaps_are_exactly_inverse_rate():
    gaps = [gap for gap, _ in _gen(process="uniform", rate_tx_s=50.0).take(100)]
    assert gaps == [1 / 50.0] * 100


def test_senders_stay_in_population():
    senders = [sender for _, sender in _gen(accounts=17).take(2000)]
    assert min(senders) >= 0
    assert max(senders) < 17
    assert len(set(senders)) == 17  # small population fully exercised


def test_zipf_skew_concentrates_on_low_ranks():
    """With s > 1 the head accounts must dominate; uniform must not."""
    skewed = Counter(s for _, s in _gen(zipf_s=1.2, accounts=1000).take(20_000))
    uniform = Counter(s for _, s in _gen(zipf_s=0.0, accounts=1000).take(20_000))
    top_skewed = sum(skewed[i] for i in range(10)) / 20_000
    top_uniform = sum(uniform[i] for i in range(10)) / 20_000
    assert top_skewed > 0.4  # head-heavy
    assert top_uniform < 0.05  # 10/1000 of a uniform draw, with slack


def test_take_returns_exactly_n_and_advances():
    gen = _gen()
    first = gen.take(10)
    second = gen.take(10)
    assert len(first) == len(second) == 10
    assert first != second  # the stream advanced, not restarted
