"""Open-loop driver: arrival-spec wiring, determinism, load shape.

The open-loop path severs the feedback coupling closed-loop clients
impose: transactions arrive by a generator-driven process at a fixed
aggregate rate whatever the cluster does. These tests pin the wiring
(ExperimentSpec -> DriverConfig -> OpenLoopDriver), the per-seed
determinism the rest of the framework guarantees, and the basic load
shape (throughput tracks the arrival rate; Zipf skew concentrates
senders).
"""

from dataclasses import replace

import pytest

from repro.core import ExperimentSpec, run_experiment
from repro.core.driver import DriverConfig, OpenLoopDriver
from repro.core.workload import ArrivalSpec
from repro.errors import BenchmarkError
from repro.platforms import build_cluster
from repro.workloads import make_workload


def _spec(**overrides) -> ExperimentSpec:
    base = ExperimentSpec(
        platform="hyperledger",
        workload="ycsb",
        n_servers=4,
        n_clients=1,
        request_rate_tx_s=1.0,
        duration_s=10.0,
        seed=7,
        arrival={
            "process": "poisson",
            "rate": 400.0,
            "accounts": 5000,
            "zipf_s": 1.1,
        },
    )
    return replace(base, **overrides)


def test_openloop_runs_and_confirms_work():
    result = run_experiment(_spec())
    assert result.summary.submitted > 0
    assert result.summary.confirmed > 0
    assert result.chain_height > 0
    assert result.queue_series  # the sampler ran


def test_openloop_is_deterministic_per_seed():
    first = run_experiment(_spec())
    second = run_experiment(_spec())
    assert first.summary == second.summary
    assert first.chain_height == second.chain_height
    assert first.queue_series == second.queue_series


def test_openloop_seed_changes_the_run():
    assert (
        run_experiment(_spec()).summary
        != run_experiment(_spec(seed=8)).summary
    )


def test_openloop_throughput_tracks_arrival_rate():
    """Open loop means offered load is the arrival rate, not a function
    of confirmations: submissions over the window must sit near
    rate x duration."""
    result = run_experiment(_spec())
    expected = 400.0 * 10.0
    assert result.summary.submitted == pytest.approx(expected, rel=0.15)


def test_openloop_ignores_closed_loop_client_knobs():
    """n_clients / per-client rate are closed-loop concepts; the open
    loop must produce the same run whatever they say."""
    a = run_experiment(_spec(n_clients=1, request_rate_tx_s=1.0))
    b = run_experiment(_spec(n_clients=64, request_rate_tx_s=999.0))
    assert a.summary == b.summary


def test_openloop_works_on_a_second_platform():
    result = run_experiment(
        _spec(
            platform="ethereum",
            duration_s=40.0,
            arrival={"process": "poisson", "rate": 100.0, "accounts": 1000,
                     "zipf_s": 0.0},
        )
    )
    assert result.summary.confirmed > 0


def test_openloop_requires_an_arrival_spec():
    cluster = build_cluster("hyperledger", 2, seed=1)
    try:
        with pytest.raises(BenchmarkError, match="arrival"):
            OpenLoopDriver(
                cluster,
                make_workload("ycsb"),
                DriverConfig(duration_s=5.0),
            )
    finally:
        cluster.close()


def test_bad_arrival_dict_fails_at_spec_construction():
    with pytest.raises(BenchmarkError):
        run_experiment(
            _spec(arrival={"process": "bursty", "rate": 10.0})
        )


def test_arrival_spec_is_validated_before_the_cluster_is_built():
    with pytest.raises(BenchmarkError):
        ArrivalSpec.from_dict({"process": "poisson", "rate": -1.0})
