"""Unit tests for the stats collector."""

from repro.core import StatsCollector, merge_collectors


def make_collector(latencies, start=0.0, end=10.0):
    collector = StatsCollector("p", "w")
    collector.begin(start)
    for i, latency in enumerate(latencies):
        collector.record_submission()
        collector.record_confirmation(float(i), float(i) + latency)
    collector.finish(end)
    return collector


def test_throughput():
    collector = make_collector([0.1] * 50, end=10.0)
    assert collector.throughput() == 5.0


def test_latency_stats():
    collector = make_collector([1.0, 2.0, 3.0, 4.0])
    assert collector.latency_avg() == 2.5
    assert collector.latency_percentile(50) == 2.0
    assert collector.latency_percentile(100) == 4.0


def test_empty_collector_safe():
    collector = StatsCollector()
    assert collector.throughput() == 0.0
    assert collector.latency_avg() == 0.0
    assert collector.latency_percentile(99) == 0.0
    assert collector.latency_cdf() == []
    assert collector.commits_per_bucket() == []
    assert collector.final_queue_length() == 0


def test_cdf_monotone_and_complete():
    collector = make_collector([float(i) for i in range(1, 101)])
    cdf = collector.latency_cdf(points=10)
    fractions = [f for _, f in cdf]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    latencies = [l for l, _ in cdf]
    assert latencies == sorted(latencies)


def test_commits_per_bucket():
    collector = StatsCollector()
    collector.begin(0.0)
    for t in [0.1, 0.5, 1.2, 2.9, 2.95]:
        collector.record_confirmation(0.0, t)
    collector.finish(3.0)
    buckets = dict(collector.commits_per_bucket(1.0))
    assert buckets[0.0] == 2
    assert buckets[1.0] == 1
    assert buckets[2.0] == 2


def test_queue_samples():
    collector = StatsCollector()
    collector.record_queue_length(1.0, 5)
    collector.record_queue_length(2.0, 8)
    assert collector.final_queue_length() == 8


def test_summary_fields():
    collector = make_collector([1.0, 3.0], end=4.0)
    collector.record_rejection()
    summary = collector.summary()
    assert summary.confirmed == 2
    assert summary.submitted == 2
    assert summary.rejected == 1
    assert summary.throughput_tx_s == 0.5
    assert summary.latency_avg_s == 2.0


def test_merge_collectors():
    a = make_collector([1.0] * 10, start=0.0, end=10.0)
    b = make_collector([2.0] * 10, start=0.0, end=12.0)
    a.record_queue_length(5.0, 3)
    b.record_queue_length(5.0, 4)
    merged = merge_collectors([a, b])
    assert merged.confirmed == 20
    assert merged.latency_avg() == 1.5
    assert merged.duration() == 12.0
    assert merged.queue_samples == [(5.0, 7)]


def test_merge_empty_list():
    merged = merge_collectors([])
    assert merged.confirmed == 0
