"""Unit tests for the intra-block transaction scheduler.

``dependency_levels`` is the determinism-critical piece of parallel
execution: the levels it assigns decide both the charged makespan and
what rides along in shared ``ExecutionCache`` entries, so the hazard
rules (RAW/WAW strictly later, WAR not earlier) are pinned here case
by case, alongside the recording ``TxView`` overlay and the
least-loaded-worker makespan.
"""

import pytest

from repro.core.txsched import (
    TxView,
    dependency_levels,
    level_makespan,
    schedule_summary,
)
from repro.platforms.base import _NamespacedState
from repro.platforms.ethereum import EthereumState


# ---------------------------------------------------------------------------
# dependency_levels
# ---------------------------------------------------------------------------
def test_disjoint_txs_all_level_one():
    accesses = [({b"r%d" % i}, {b"w%d" % i}) for i in range(8)]
    assert dependency_levels(accesses) == (1,) * 8


def test_empty_block():
    assert dependency_levels([]) == ()


def test_read_after_write_is_strictly_later():
    # tx0 writes k; tx1 reads k: tx1 consumed tx0's value.
    assert dependency_levels([(set(), {b"k"}), ({b"k"}, set())]) == (1, 2)


def test_write_after_write_is_strictly_later():
    # Same-key writers must serialize so the merged prefix at every
    # level equals the serial prefix.
    assert dependency_levels([(set(), {b"k"}), (set(), {b"k"})]) == (1, 2)


def test_write_after_read_may_share_a_level():
    # tx0 reads k; tx1 writes k. tx0 reads the pre-level snapshot,
    # which excludes tx1's write, so the same level is hazard-free.
    assert dependency_levels([({b"k"}, set()), (set(), {b"k"})]) == (1, 1)


def test_write_after_read_never_earlier():
    # tx0 writes a (level 1); tx1 reads a (level 2) and also reads k;
    # tx2 writes k: must not run before tx1's level.
    accesses = [
        (set(), {b"a"}),
        ({b"a", b"k"}, set()),
        (set(), {b"k"}),
    ]
    assert dependency_levels(accesses) == (1, 2, 2)


def test_single_hot_key_degrades_to_serial_chain():
    # The adversarial workload: every transaction reads and writes one
    # key — the schedule must be the serial chain 1..N.
    accesses = [({b"hot"}, {b"hot"}) for _ in range(16)]
    assert dependency_levels(accesses) == tuple(range(1, 17))


def test_chain_through_intermediate_keys():
    # tx0 writes a; tx1 reads a writes b; tx2 reads b: a 3-level chain
    # even though tx0 and tx2 share no key directly.
    accesses = [
        (set(), {b"a"}),
        ({b"a"}, {b"b"}),
        ({b"b"}, set()),
    ]
    assert dependency_levels(accesses) == (1, 2, 3)


def test_levels_are_order_sensitive_but_deterministic():
    accesses = [(set(), {b"k"}), ({b"k"}, set()), (set(), {b"x"})]
    assert dependency_levels(accesses) == dependency_levels(accesses)
    assert dependency_levels(accesses) == (1, 2, 1)


# ---------------------------------------------------------------------------
# level_makespan
# ---------------------------------------------------------------------------
def test_makespan_one_worker_is_the_serial_sum():
    durations = [0.3, 0.1, 0.4, 0.15]
    levels = (1, 1, 2, 2)
    assert level_makespan(durations, levels, 1) == pytest.approx(
        sum(durations)
    )


def test_makespan_parallel_level_costs_its_longest_worker():
    # One level, 4 equal txs, 2 workers: two per worker.
    assert level_makespan([1.0] * 4, (1, 1, 1, 1), 2) == pytest.approx(2.0)
    # 4 workers: one each.
    assert level_makespan([1.0] * 4, (1, 1, 1, 1), 4) == pytest.approx(1.0)
    # More workers than txs changes nothing further.
    assert level_makespan([1.0] * 4, (1, 1, 1, 1), 16) == pytest.approx(1.0)


def test_makespan_levels_are_barriers():
    # Two levels of one tx each: no overlap regardless of workers.
    assert level_makespan([1.0, 1.0], (1, 2), 8) == pytest.approx(2.0)


def test_makespan_least_loaded_assignment():
    # Block order onto least-loaded: [3] -> w0, [1] -> w1, [1] -> w1,
    # [1] -> w1: loads (3, 3), makespan 3 — not the 4 a round-robin
    # would give.
    assert level_makespan([3.0, 1.0, 1.0, 1.0], (1,) * 4, 2) == (
        pytest.approx(3.0)
    )


def test_makespan_length_mismatch_raises():
    with pytest.raises(ValueError):
        level_makespan([1.0], (1, 2), 2)


def test_makespan_empty_block_is_zero():
    assert level_makespan([], (), 4) == 0.0


# ---------------------------------------------------------------------------
# TxView capture
# ---------------------------------------------------------------------------
class _DictParent:
    def __init__(self, **kv):
        self.data = {k.encode(): v for k, v in kv.items()}

    def get(self, key):
        return self.data.get(key)

    def put(self, key, value):
        self.data[key] = value

    def delete(self, key):
        self.data.pop(key, None)


def test_txview_records_parent_reads_only():
    view = TxView(_DictParent(a=b"1"))
    assert view.get(b"a") == b"1"
    view.put(b"b", b"2")
    assert view.get(b"b") == b"2"  # read-your-writes, not a parent read
    reads, writes = view.access_sets()
    assert reads == {b"a"}
    assert writes == {b"b"}


def test_txview_buffers_until_merge():
    parent = _DictParent(a=b"old")
    view = TxView(parent)
    view.put(b"a", b"new")
    view.delete(b"gone")
    assert parent.data[b"a"] == b"old"  # nothing leaked pre-merge
    view.merge_into(parent)
    assert parent.data[b"a"] == b"new"
    assert b"gone" not in parent.data


def test_txview_read_after_own_delete_stays_local():
    view = TxView(_DictParent(a=b"1"))
    view.delete(b"a")
    assert view.get(b"a") is None
    reads, writes = view.access_sets()
    assert reads == set()  # the delete shadowed the parent
    assert writes == {b"a"}


def test_txview_last_write_wins_within_a_tx():
    parent = _DictParent()
    view = TxView(parent)
    view.put(b"k", b"v1")
    view.put(b"k", b"v2")
    view.merge_into(parent)
    assert parent.data[b"k"] == b"v2"


def test_txview_capture_through_evm_state_storage():
    # Every EVM SLOAD/SSTORE funnels through StateStorage ->
    # _NamespacedState -> the platform state, so a TxView behind the
    # facade sees the namespaced 32-byte slot keys with no VM changes.
    from repro.evm.vm import StateStorage

    state = EthereumState()
    view = TxView(state)
    storage = StateStorage(_NamespacedState(view, "evmc"))
    storage.set_word(5, 77)
    assert storage.get_word(5) == 77
    assert storage.get_word(9) == 0  # absent slot: a parent read
    storage.set_word(5, 0)  # zero-store deletes the slot
    reads, writes = view.access_sets()
    slot5 = b"evmc/" + (5).to_bytes(32, "big")
    slot9 = b"evmc/" + (9).to_bytes(32, "big")
    assert writes == {slot5}
    assert reads == {slot9}
    assert view.writes[slot5] is None  # net effect of the zero-store


# ---------------------------------------------------------------------------
# schedule_summary
# ---------------------------------------------------------------------------
def test_schedule_summary_shapes():
    assert schedule_summary(()) == {"txs": 0, "levels": 0, "widest_level": 0}
    assert schedule_summary((1, 1, 2, 1)) == {
        "txs": 4,
        "levels": 2,
        "widest_level": 3,
    }
