"""Crash-recovery tests: restart, block-sync catch-up, consensus
rejoin, fault composition, and client failover.

The differential tests pin the tentpole guarantee: a node that crashes
and recovers ends with byte-identical per-height state roots to a peer
that never crashed — warm or cold, on every platform.
"""

import pytest

from repro.core import (
    ByzantineFault,
    CrashFault,
    Driver,
    DriverConfig,
    FaultSchedule,
)
from repro.core.runner import ExperimentSpec, run_experiment
from repro.core.suitestore import spec_hash
from repro.platforms import build_cluster
from repro.workloads import DoNothingWorkload, make_workload

PLATFORMS = ("hyperledger", "ethereum", "parity", "erisdb")


def _run_with_crash(platform, mode, crash_at=8.0, recover_at=12.0,
                    duration=20.0):
    cluster = build_cluster(platform, 4, seed=17)
    driver = Driver(
        cluster,
        make_workload("ycsb"),
        DriverConfig(n_clients=2, request_rate_tx_s=40, duration_s=duration),
    )
    driver.prepare()
    FaultSchedule(
        crashes=[
            CrashFault(
                at_time=crash_at,
                count=1,
                include_leader=False,
                recover_at=recover_at,
                recovery_mode=mode,
            )
        ]
    ).arm(cluster)
    driver.run()
    return cluster


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("mode", ["warm", "cold"])
def test_recovered_roots_match_uninterrupted_peer(platform, mode):
    """Catch-up replays through the normal execution path, so the
    recovered node's roots are indistinguishable from never crashing."""
    cluster = _run_with_crash(platform, mode)
    recovered = cluster.nodes[-1]
    witness = cluster.nodes[1]  # never crashed, never the leader
    assert recovered.recovery_times, "recovery never completed"
    assert not recovered._recovering
    common = min(recovered.executed_height, witness.executed_height)
    assert common > 0
    for height in range(1, common + 1):
        assert (
            recovered._height_roots[height] == witness._height_roots[height]
        ), f"{platform}/{mode}: state root diverges at height {height}"
        assert (
            recovered.executed_block_hashes[height]
            == witness.executed_block_hashes[height]
        ), f"{platform}/{mode}: block hash diverges at height {height}"
    report = cluster.auditor.report()
    assert report.safe, report.to_json()
    assert recovered.node_id in report.recovered_nodes
    cluster.close()


def test_cold_recovery_syncs_and_counts_traffic():
    cluster = _run_with_crash("hyperledger", "cold")
    recovered = cluster.nodes[-1]
    assert recovered.sync_requests_sent > 0
    assert recovered.sync_bytes_received > 0
    traffic = cluster.sync_traffic()
    assert traffic["requests"] >= recovered.sync_requests_sent
    assert cluster.recovery_times()[recovered.node_id] > 0.0
    cluster.close()


def test_pbft_primary_crash_view_change_and_rejoin():
    """Crashing the view-0 primary forces a view change; the restarted
    primary learns the current view from sync peers and rejoins it."""
    cluster = build_cluster("hyperledger", 4, seed=23)
    driver = Driver(
        cluster,
        make_workload("ycsb"),
        DriverConfig(n_clients=2, request_rate_tx_s=40, duration_s=30),
    )
    driver.prepare()
    FaultSchedule(
        crashes=[
            CrashFault(at_time=5.0, count=1, recover_at=12.0)
        ]
    ).arm(cluster)
    driver.run()
    primary = cluster.nodes[0]
    assert primary.recovery_times
    view_changes = sum(
        getattr(n.protocol, "view_changes_started", 0) for n in cluster.nodes
    )
    assert view_changes > 0
    views = {n.protocol.view for n in cluster.nodes}
    assert len(views) == 1, f"views did not converge: {views}"
    assert cluster.auditor.report().safe
    cluster.close()


# ---------------------------------------------------------------------------
# Fault composition
# ---------------------------------------------------------------------------
def test_crash_during_byzantine_window_does_not_resurrect_filter():
    """A byzantine node that crashes and restarts comes back honest:
    the send filter dies with the process, the taint does not."""
    cluster = build_cluster("hyperledger", 4, seed=31)
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=2, request_rate_tx_s=20, duration_s=16),
    )
    driver.prepare()
    FaultSchedule(
        byzantines=[
            ByzantineFault(
                at_time=2.0, until_time=10.0, nodes=["server-0"]
            )
        ],
        crashes=[
            CrashFault(at_time=4.0, nodes=["server-0"], recover_at=6.0)
        ],
    ).arm(cluster)
    driver.run()
    assert "server-0" not in cluster.network._send_filters
    assert "server-0" in cluster.network.ever_byzantine
    assert cluster.nodes[0].recovery_times
    cluster.close()


def test_crash_inside_partition_syncs_only_after_heal():
    """A node recovering while partitioned away retries until heal():
    its sync requests are dropped in transit, not failed over."""
    cluster = build_cluster("hyperledger", 4, seed=37)
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=2, request_rate_tx_s=20, duration_s=25),
    )
    driver.prepare()
    victim = cluster.nodes[-1]
    others = [n.node_id for n in cluster.nodes[:-1]]
    scheduler = cluster.scheduler
    scheduler.schedule_at(
        2.0, cluster.network.partition, [[victim.node_id], others]
    )
    scheduler.schedule_at(3.0, victim.crash)
    scheduler.schedule_at(5.0, victim.recover, "warm")
    for client in driver.clients:
        client.start(25.0)
    cluster.run_until(12.0)
    assert victim._recovering, "synced across an active partition"
    assert victim.sync_requests_sent > 1  # retry loop kept rotating
    cluster.network.heal()
    cluster.run_until(25.0)
    assert not victim._recovering
    assert victim.recovery_times
    # Caught up to the honest tip it could see at finish time.
    assert victim.executed_height > 0
    assert cluster.auditor.report().safe
    cluster.close()


def test_back_to_back_crash_recover_cycles():
    """Two full crash/recover cycles on the same node: each records its
    own recovery time and the node still converges."""
    cluster = build_cluster("hyperledger", 4, seed=41)
    driver = Driver(
        cluster,
        make_workload("ycsb"),
        DriverConfig(n_clients=2, request_rate_tx_s=40, duration_s=24),
    )
    driver.prepare()
    FaultSchedule(
        crashes=[
            CrashFault(at_time=3.0, nodes=["server-3"], recover_at=7.0),
            CrashFault(at_time=11.0, nodes=["server-3"], recover_at=15.0),
        ]
    ).arm(cluster)
    driver.run()
    node = cluster.nodes[-1]
    assert len(node.recovery_times) == 2
    assert cluster.recovery_times()["server-3"] == node.recovery_times[-1]
    report = cluster.auditor.report()
    assert report.safe, report.to_json()
    cluster.close()


# ---------------------------------------------------------------------------
# Client failover
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("client_mode", ["coroutine", "callback", "batch"])
def test_failover_completes_workload_through_crash(client_mode):
    """A client whose server crashes fails over and finishes the run
    with zero lost transactions (no stuck backlog)."""
    result = run_experiment(
        ExperimentSpec(
            platform="hyperledger",
            workload="donothing",
            n_servers=4,
            n_clients=4,
            request_rate_tx_s=40,
            duration_s=30,
            seed=7,
            client_mode=client_mode,
            failover=True,
            faults=FaultSchedule(
                crashes=[
                    CrashFault(at_time=5.0, count=1, recover_at=15.0)
                ]
            ),
        )
    )
    summary = result.summary
    assert summary.confirmed > 0
    # Zero lost transactions: every submission was either confirmed or
    # explicitly rejected-and-retried; nothing vanished with the crash.
    assert summary.submitted - summary.rejected - summary.confirmed == 0
    assert summary.recovery_time_s
    assert summary.safety_violations == 0


def test_failover_modes_agree_exactly():
    """All three client implementations walk the identical failover
    timeline: same submissions, confirmations, and throughput."""
    outcomes = set()
    for client_mode in ("coroutine", "callback", "batch"):
        result = run_experiment(
            ExperimentSpec(
                platform="hyperledger",
                workload="donothing",
                n_servers=4,
                n_clients=2,
                request_rate_tx_s=30,
                duration_s=20,
                seed=7,
                client_mode=client_mode,
                failover=True,
                faults=FaultSchedule(
                    crashes=[
                        CrashFault(at_time=5.0, count=1, recover_at=12.0)
                    ]
                ),
            )
        )
        outcomes.add(
            (
                result.summary.submitted,
                result.summary.confirmed,
                round(result.summary.throughput_tx_s, 9),
            )
        )
    assert len(outcomes) == 1, outcomes


def test_failover_off_keeps_runs_byte_identical():
    """The failover machinery is inert unless asked for: a faultless
    run with the knob at its default matches the pre-knob timeline."""
    base = run_experiment(
        ExperimentSpec(
            platform="ethereum", workload="donothing", n_servers=4,
            n_clients=2, request_rate_tx_s=20, duration_s=10, seed=5,
        )
    )
    again = run_experiment(
        ExperimentSpec(
            platform="ethereum", workload="donothing", n_servers=4,
            n_clients=2, request_rate_tx_s=20, duration_s=10, seed=5,
        )
    )
    assert base.summary == again.summary
    assert base.summary.recovery_time_s == {}
    assert base.summary.sync_bytes == 0


# ---------------------------------------------------------------------------
# Spec-hash stability
# ---------------------------------------------------------------------------
def test_old_style_crash_spec_hash_is_stable():
    """Specs written before the recovery knobs existed keep their
    content hash, so resumable suite stores stay addressable."""
    spec = ExperimentSpec(
        platform="hyperledger",
        workload="ycsb",
        n_servers=4,
        n_clients=2,
        duration_s=20.0,
        faults=FaultSchedule(crashes=[CrashFault(at_time=10.0, count=1)]),
    )
    # Frozen values computed at the commit before the recovery knobs.
    assert spec_hash(spec) == "a492163c7e8636a2"
    assert spec_hash(ExperimentSpec()) == "9f9e36779f700672"


def test_recovery_knobs_change_the_spec_hash():
    def crash_spec(**kwargs):
        return ExperimentSpec(
            faults=FaultSchedule(crashes=[CrashFault(at_time=10.0, **kwargs)])
        )

    plain = spec_hash(crash_spec(count=1))
    assert spec_hash(crash_spec(count=1, recover_at=20.0)) != plain
    assert (
        spec_hash(
            crash_spec(count=1, recover_at=20.0, recovery_mode="cold")
        )
        != spec_hash(crash_spec(count=1, recover_at=20.0))
    )
    assert spec_hash(crash_spec(nodes=["server-2"])) != plain
    failover = ExperimentSpec(failover=True)
    assert spec_hash(failover) != spec_hash(ExperimentSpec())


def test_crash_nodes_knob_targets_exactly_those_nodes():
    cluster = build_cluster("ethereum", 4, seed=3)
    schedule = FaultSchedule(
        crashes=[CrashFault(at_time=1.0, nodes=["server-1", "server-2"])]
    )
    schedule.arm(cluster)
    cluster.run_until(2.0)
    crashed = {n.node_id for n in cluster.nodes if n.crashed}
    assert crashed == {"server-1", "server-2"}
    assert sorted(schedule.crashed_node_ids) == ["server-1", "server-2"]
    cluster.close()


def test_recover_before_crash_is_rejected():
    from repro.errors import BenchmarkError

    cluster = build_cluster("ethereum", 2, seed=3)
    schedule = FaultSchedule(
        crashes=[CrashFault(at_time=5.0, count=1, recover_at=4.0)]
    )
    with pytest.raises(BenchmarkError):
        schedule.arm(cluster)
    bad_mode = FaultSchedule(
        crashes=[CrashFault(at_time=5.0, count=1, recovery_mode="tepid")]
    )
    with pytest.raises(BenchmarkError):
        bad_mode.arm(cluster)
    cluster.close()
