"""Lifecycle tracing: StageTracer mechanics and end-to-end invariants.

The unit half pins the recorder's contract (first occurrence wins,
monotone clamping, O(1) backlog gauges, breakdown aggregation); the
integration half runs every platform through closed-loop (coroutine and
batch) and open-loop drivers and asserts the structural invariants the
bottleneck table depends on: stamps are monotone in lifecycle order,
interval averages telescope to the end-to-end average, and that average
matches the StatsCollector's latency figure exactly.
"""

import math

import pytest

from repro.core import ExperimentSpec, StageBreakdown, StageTracer, run_experiment
from repro.core.driver import Driver, DriverConfig, OpenLoopDriver
from repro.core.trace import STAGE_INTERVALS, STAGES
from repro.platforms import build_cluster
from repro.workloads import make_workload

PLATFORMS = ("ethereum", "parity", "hyperledger", "erisdb")


# ---------------------------------------------------------------------------
# StageTracer unit behavior
# ---------------------------------------------------------------------------
def test_first_occurrence_wins():
    tracer = StageTracer()
    tracer.record_admit("tx", 1.0)
    tracer.record_admit("tx", 5.0)  # gossip copy arriving later
    assert tracer._stamps["tx"][STAGES.index("admit")] == 1.0


def test_stamps_are_clamped_monotone():
    tracer = StageTracer()
    tracer.record_decide(["tx"], 4.0)
    # A raced notification carrying an earlier raw clock is clamped up.
    tracer.record_notify("tx", 3.0)
    slots = tracer._stamps["tx"]
    assert slots[STAGES.index("notify")] == 4.0


def test_queue_gauges_track_pipeline_transitions():
    tracer = StageTracer()
    assert tracer.queue_depths() == (0, 0, 0)
    tracer.record_admit("a", 1.0)
    tracer.record_admit("b", 1.0)
    assert tracer.queue_depths() == (2, 0, 0)
    tracer.record_propose(["a"], 2.0)
    assert tracer.queue_depths() == (1, 1, 0)
    tracer.record_decide(["a"], 3.0)
    assert tracer.queue_depths() == (1, 0, 1)
    tracer.record_notify("a", 4.0)
    assert tracer.queue_depths() == (1, 0, 0)


def test_skipped_stages_never_drive_gauges_negative():
    tracer = StageTracer()
    # decide without admit/propose (e.g. a replayed block's tx).
    tracer.record_decide(["ghost"], 1.0)
    tracer.record_notify("ghost", 2.0)
    assert tracer.queue_depths() == (0, 0, 0)


def test_breakdown_aggregates_and_counts_partials():
    tracer = StageTracer()
    for tx, base in (("a", 0.0), ("b", 10.0)):
        tracer.record_submit(tx, base)
        tracer.record_admit(tx, base + 1.0)
        tracer.record_propose([tx], base + 2.0)
        tracer.record_decide([tx], base + 3.0)
        tracer.record_execute([tx], base + 4.0)
        tracer.record_commit([tx], base + 4.0)
        tracer.record_notify(tx, base + 5.0)
    tracer.record_submit("unfinished", 20.0)
    breakdown = tracer.breakdown([(0.5, 3, 1, 2), (1.0, 5, 0, 4)])
    assert breakdown.traced == 2
    assert breakdown.partial == 1
    assert breakdown.end_to_end_avg_s == pytest.approx(5.0)
    avgs = breakdown.stage_avgs()
    assert avgs["admission"] == pytest.approx(1.0)
    assert avgs["state_commit"] == 0.0
    assert breakdown.dominant_stage() in ("admission", "mempool_wait",
                                          "consensus", "notification")
    assert breakdown.queue_depth_avg["mempool"] == pytest.approx(4.0)
    assert breakdown.queue_depth_peak["execution"] == 4


def test_breakdown_dict_round_trip():
    tracer = StageTracer()
    tracer.record_submit("a", 0.0)
    for helper in (tracer.record_admit, tracer.record_notify):
        helper("a", 1.0)
    import dataclasses

    breakdown = tracer.breakdown([(0.0, 1, 2, 3)])
    rebuilt = StageBreakdown.from_dict(dataclasses.asdict(breakdown))
    assert rebuilt == breakdown


def test_empty_tracer_breakdown_has_no_dominant_stage():
    breakdown = StageTracer().breakdown()
    assert breakdown.traced == 0
    assert breakdown.dominant_stage() is None
    assert breakdown.end_to_end_avg_s == 0.0


# ---------------------------------------------------------------------------
# End-to-end invariants across platforms and driver shapes
# ---------------------------------------------------------------------------
def _drive(platform: str, client_mode: str = "coroutine", open_loop: bool = False):
    """Run a short experiment keeping the cluster (and tracer) alive."""
    cluster = build_cluster(platform, 2, seed=3)
    workload = make_workload("ycsb")
    config = DriverConfig(
        n_clients=2,
        request_rate_tx_s=20.0,
        duration_s=5.0,
        client_mode=client_mode,
        arrival=None,
    )
    if open_loop:
        from repro.core.workload import ArrivalSpec

        config.arrival = ArrivalSpec(process="poisson", rate_tx_s=40.0,
                                     accounts=100, zipf_s=0.0)
        driver = OpenLoopDriver(cluster, workload, config)
    else:
        driver = Driver(cluster, workload, config)
    driver.prepare()
    stats = driver.run(extra_drain_s=5.0)
    tracer = cluster.tracer
    breakdown = tracer.breakdown(stats.stage_queue_samples)
    # Each stamp row is the 7 stage slots plus a running-max scratch
    # slot the clamp uses; only the stage slots matter here.
    stamps = {
        tx: list(slots[: len(STAGES)])
        for tx, slots in tracer._stamps.items()
    }
    summary = stats.summary()
    cluster.close()
    return stamps, breakdown, summary


def _assert_monotone(stamps: dict) -> int:
    """Every tx's recorded stamps are non-decreasing in lifecycle order.

    Returns how many transactions carried a complete 7-point lifecycle.
    """
    complete = 0
    for tx_id, slots in stamps.items():
        recorded = [(STAGES[i], s) for i, s in enumerate(slots) if s is not None]
        assert recorded, f"{tx_id} has an empty stamp row"
        for (prev_name, prev), (name, cur) in zip(recorded, recorded[1:]):
            assert cur >= prev, (
                f"{tx_id}: {name}@{cur} precedes {prev_name}@{prev}"
            )
        if len(recorded) == len(STAGES):
            complete += 1
    return complete


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("client_mode", ["coroutine", "batch"])
def test_closed_loop_stamps_are_monotone(platform, client_mode):
    stamps, breakdown, summary = _drive(platform, client_mode=client_mode)
    complete = _assert_monotone(stamps)
    assert complete == breakdown.traced
    if platform == "ethereum":
        # 5 simulated seconds is shorter than PoW's confirmation depth;
        # the pipeline stamps up to decide are still exercised.
        assert stamps
        return
    assert breakdown.traced > 0


@pytest.mark.parametrize("platform", PLATFORMS)
def test_open_loop_stamps_are_monotone(platform):
    stamps, breakdown, summary = _drive(platform, open_loop=True)
    complete = _assert_monotone(stamps)
    assert complete == breakdown.traced
    if platform != "ethereum":
        assert breakdown.traced > 0


@pytest.mark.parametrize("platform", ("hyperledger", "parity", "erisdb"))
def test_stage_averages_telescope_to_end_to_end(platform):
    _, breakdown, summary = _drive(platform)
    assert breakdown.traced > 0
    total = sum(stat.avg_s for stat in breakdown.stages)
    assert math.isclose(total, breakdown.end_to_end_avg_s, rel_tol=1e-9)
    # submit is backdated to the submission instant, so the traced
    # end-to-end average tracks the StatsCollector's latency average;
    # monotone clamping can push notify past the raw confirmation time
    # when a reply races a block's charged execution window, so the two
    # agree closely but not bit-for-bit on every platform.
    assert math.isclose(
        breakdown.end_to_end_avg_s, summary.latency_avg_s, rel_tol=0.02
    )
    assert all(stat.count == breakdown.traced for stat in breakdown.stages)
    assert [stat.stage for stat in breakdown.stages] == [
        name for name, _, _ in STAGE_INTERVALS
    ]


def test_subscribe_path_stamps_notify():
    """ErisDB's pub/sub confirmation feed reaches the notify hook."""
    result = run_experiment(
        ExperimentSpec(
            platform="erisdb", workload="ycsb", n_servers=2, n_clients=2,
            request_rate_tx_s=20.0, duration_s=5.0, seed=3, subscribe=True,
        )
    )
    breakdown = result.summary.stage_breakdown
    assert breakdown is not None and breakdown.traced > 0
    assert breakdown.stage_avgs()["notification"] >= 0.0


def test_run_experiment_attaches_breakdown_only_when_tracing():
    spec = ExperimentSpec(
        platform="hyperledger", workload="ycsb", n_servers=2, n_clients=2,
        request_rate_tx_s=20.0, duration_s=5.0, seed=3,
    )
    traced = run_experiment(spec)
    assert traced.summary.stage_breakdown is not None
    from dataclasses import replace

    untraced = run_experiment(replace(spec, trace_stages=False))
    assert untraced.summary.stage_breakdown is None
    # The simulated outcome is identical either way.
    assert untraced.summary.confirmed == traced.summary.confirmed
    assert untraced.summary.latency_avg_s == traced.summary.latency_avg_s
