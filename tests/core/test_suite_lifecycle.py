"""Suite lifecycle tests: spec hashing, the result store, and resume."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    ExperimentSpec,
    ScenarioSpec,
    ScenarioSuite,
    SuiteStore,
    run_experiment,
    spec_hash,
)
from repro.core.faults import CrashFault, FaultSchedule
from repro.core.suitestore import RUN_SCHEMA, spec_to_dict
from repro.config import hyperledger_config
from repro.errors import BenchmarkError

REPO_ROOT = Path(__file__).resolve().parents[2]


def _suite(**scenario_kwargs) -> ScenarioSuite:
    defaults = dict(
        platforms="hyperledger", workloads="donothing",
        servers=2, clients=2, rates=[20, 40], durations=3, seeds=1,
    )
    defaults.update(scenario_kwargs)
    return ScenarioSuite(name="lifecycle", scenarios=[ScenarioSpec(**defaults)])


# ----------------------------------------------------------------------
# Spec hashing
# ----------------------------------------------------------------------
def test_spec_hash_is_deterministic_and_axis_sensitive():
    base = ExperimentSpec(platform="hyperledger", seed=1)
    assert spec_hash(base) == spec_hash(ExperimentSpec(platform="hyperledger", seed=1))
    # Every sweep axis must move the hash — a collision would make
    # --resume silently serve one grid point's result for another.
    for change in (
        dict(platform="ethereum"),
        dict(seed=2),
        dict(request_rate_tx_s=99.0),
        dict(n_servers=4),
        dict(workload="donothing"),
        dict(poll_interval_s=0.125),
        dict(config_overrides={"pbft": {"batch_size": 250}}),
        dict(faults=FaultSchedule(crashes=[CrashFault(at_time=5.0, count=1)])),
    ):
        changed = ExperimentSpec(**{"platform": "hyperledger", "seed": 1, **change})
        assert spec_hash(changed) != spec_hash(base), change


def test_spec_hash_stable_across_process_restarts():
    """Two fresh interpreters agree with in-process hashing."""
    spec = ExperimentSpec(
        platform="hyperledger",
        seed=3,
        config_overrides={"pbft": {"batch_size": 250}},
        faults=FaultSchedule(crashes=[CrashFault(at_time=5.0, count=1)]),
    )
    code = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.core import ExperimentSpec, spec_hash\n"
        "from repro.core.faults import CrashFault, FaultSchedule\n"
        "spec = ExperimentSpec(platform='hyperledger', seed=3,\n"
        "    config_overrides={'pbft': {'batch_size': 250}},\n"
        "    faults=FaultSchedule(crashes=[CrashFault(at_time=5.0, count=1)]))\n"
        "print(spec_hash(spec))\n"
    )
    hashes = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, cwd=REPO_ROOT, check=True,
        ).stdout.strip()
        for _ in range(2)
    }
    assert hashes == {spec_hash(spec)}


def test_spec_hash_ignores_fault_runtime_state():
    armed = FaultSchedule(crashes=[CrashFault(at_time=5.0, count=1)])
    pristine = FaultSchedule(crashes=[CrashFault(at_time=5.0, count=1)])
    armed.crashed_node_ids.append("server-0")
    assert spec_hash(ExperimentSpec(faults=armed)) == spec_hash(
        ExperimentSpec(faults=pristine)
    )


def test_spec_hash_covers_dataclass_configs():
    small = ExperimentSpec(config=hyperledger_config())
    big = ExperimentSpec(
        config=hyperledger_config(inbox_capacity=1300)
    )
    assert spec_hash(small) != spec_hash(big)
    # The canonical dict carries a type tag alongside the fields.
    assert spec_to_dict(small)["config"]["__type__"] == "HyperledgerConfig"


def test_spec_hash_rejects_unserializable_config():
    with pytest.raises(BenchmarkError, match="no stable serialization"):
        spec_hash(ExperimentSpec(config=object()))


def test_override_axis_points_hash_apart():
    suite = _suite(
        rates=20,
        overrides=[
            {"pbft": {"batch_size": 100}},
            {"pbft": {"batch_size": 500}},
        ],
    )
    specs = suite.expand()
    assert len({spec_hash(s) for s in specs}) == len(specs) == 2


# ----------------------------------------------------------------------
# The result store
# ----------------------------------------------------------------------
def test_store_round_trips_a_result(tmp_path):
    spec = ExperimentSpec(
        platform="hyperledger", workload="donothing",
        n_servers=2, n_clients=2, request_rate_tx_s=20.0,
        duration_s=3.0, seed=1,
    )
    result = run_experiment(spec)
    store = SuiteStore(tmp_path)
    path = store.save(result)
    assert path == tmp_path / "runs" / f"{spec_hash(spec)}.json"
    loaded = store.load(spec)
    assert loaded is not None
    assert loaded.spec is spec  # live spec object, not a reconstruction
    assert loaded.summary == result.summary
    assert loaded.queue_series == result.queue_series
    assert loaded.chain_height == result.chain_height
    assert loaded.stats.submitted == result.summary.submitted


def test_store_treats_damage_as_missing(tmp_path):
    spec = ExperimentSpec(
        platform="hyperledger", workload="donothing",
        n_servers=2, n_clients=2, duration_s=3.0, request_rate_tx_s=20.0,
    )
    store = SuiteStore(tmp_path)
    assert store.load(spec) is None  # never written
    path = store.path_for(spec)
    path.write_text("{truncated")
    assert store.load(spec) is None  # corrupt JSON
    path.write_text(json.dumps({"schema": "something-else/9"}))
    assert store.load(spec) is None  # wrong schema
    payload = json.dumps(
        {"schema": RUN_SCHEMA, "spec_hash": "0" * 16, "spec": {}}
    )
    path.write_text(payload)
    assert store.load(spec) is None  # hash/name mismatch


# ----------------------------------------------------------------------
# Resume semantics
# ----------------------------------------------------------------------
def test_mid_suite_crash_leaves_valid_partial_store(tmp_path, monkeypatch):
    """A campaign killed after run 1 resumes with only runs 2+ executed."""
    import repro.core.scenario as scenario_mod

    suite = _suite()
    total = len(suite.expand())
    assert total == 2

    calls = []
    real_run = run_experiment

    def crash_after_first(spec):
        if calls:
            raise KeyboardInterrupt("simulated kill")
        calls.append(spec)
        return real_run(spec)

    monkeypatch.setattr(scenario_mod, "run_experiment", crash_after_first)
    with pytest.raises(KeyboardInterrupt):
        suite.run(out_dir=tmp_path)
    # The killed campaign left exactly the finished run behind, valid.
    files = list((tmp_path / "runs").glob("*.json"))
    assert len(files) == 1
    assert json.loads(files[0].read_text())["schema"] == RUN_SCHEMA

    executed = []

    def count_runs(spec):
        executed.append(spec)
        return real_run(spec)

    monkeypatch.setattr(scenario_mod, "run_experiment", count_runs)
    result = suite.run(out_dir=tmp_path, resume=True)
    assert len(executed) == 1  # only the missing grid point ran
    assert result.resumed == 1
    assert len(result.results) == total
    assert all(r.summary.confirmed >= 0 for r in result.results)


def test_resumed_suite_result_matches_uninterrupted_run(tmp_path):
    suite = _suite()
    uninterrupted = suite.run()
    partial_dir = tmp_path / "partial"
    suite.run(out_dir=partial_dir)
    # Kill one grid point and resume.
    victim = sorted((partial_dir / "runs").glob("*.json"))[0]
    victim.unlink()
    resumed = suite.run(out_dir=partial_dir, resume=True)
    assert resumed.resumed == len(suite.expand()) - 1
    assert json.dumps(resumed.to_json(), sort_keys=True) == json.dumps(
        uninterrupted.to_json(), sort_keys=True
    )
    # The grid rows (platform/axes/metrics) align too.
    assert resumed.to_rows() == uninterrupted.to_rows()


def test_resume_with_complete_store_executes_nothing(tmp_path, monkeypatch):
    import repro.core.scenario as scenario_mod

    suite = _suite()
    suite.run(out_dir=tmp_path)
    monkeypatch.setattr(
        scenario_mod,
        "run_experiment",
        lambda spec: pytest.fail("a fully stored suite must not re-run"),
    )
    result = suite.run(out_dir=tmp_path, resume=True)
    assert result.resumed == len(result.results) == 2


def test_run_without_resume_overwrites_store(tmp_path):
    suite = _suite()
    suite.run(out_dir=tmp_path)
    before = {
        p.name: p.read_text() for p in (tmp_path / "runs").glob("*.json")
    }
    suite.run(out_dir=tmp_path)  # no resume: everything re-executes
    after = {
        p.name: p.read_text() for p in (tmp_path / "runs").glob("*.json")
    }
    assert before == after  # deterministic sim: same bytes either way


def test_resume_requires_out_dir():
    with pytest.raises(BenchmarkError, match="requires out_dir"):
        _suite().run(resume=True)


def test_multiprocessing_run_persists_every_point(tmp_path):
    suite = _suite()
    result = suite.run(processes=2, out_dir=tmp_path)
    assert len(list((tmp_path / "runs").glob("*.json"))) == 2
    # And a subsequent serial resume trusts the parallel store.
    resumed = suite.run(out_dir=tmp_path, resume=True)
    assert resumed.resumed == 2
    assert resumed.to_rows() == result.to_rows()


def test_manifest_written_with_run_hashes(tmp_path):
    suite = _suite()
    result = suite.run(out_dir=tmp_path)
    manifest = json.loads((tmp_path / "suite.json").read_text())
    assert manifest["schema"] == "blockbench-suite/1"
    assert manifest["suite"] == "lifecycle"
    assert manifest["runs"] == 2
    assert manifest["run_hashes"] == [spec_hash(r.spec) for r in result.results]
    hashes = {p.stem for p in (tmp_path / "runs").glob("*.json")}
    assert set(manifest["run_hashes"]) == hashes


def test_new_optional_fields_do_not_move_old_spec_hashes():
    """PR 6 added ``arrival`` and ``stats_reservoir`` to the spec. At
    their defaults they must be invisible to the canonical form, or
    every committed baseline store and resumable campaign on disk
    would silently orphan (same physics, new hash)."""
    spec = ExperimentSpec(platform="hyperledger", seed=1)
    data = spec_to_dict(spec)
    assert "arrival" not in data
    assert "stats_reservoir" not in data


def test_non_default_arrival_and_reservoir_hash_apart():
    """A real axis value must enter the hash, like any other axis."""
    base = ExperimentSpec(platform="hyperledger", seed=1)
    arrival = ExperimentSpec(
        platform="hyperledger", seed=1,
        arrival={"process": "poisson", "rate": 100.0},
    )
    reservoir = ExperimentSpec(
        platform="hyperledger", seed=1, stats_reservoir=1000
    )
    hashes = {spec_hash(base), spec_hash(arrival), spec_hash(reservoir)}
    assert len(hashes) == 3
    assert "arrival" in spec_to_dict(arrival)
    assert spec_to_dict(reservoir)["stats_reservoir"] == 1000
