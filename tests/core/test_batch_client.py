"""Differential tests: the vectorized BatchClient vs N real clients.

PR 6's tentpole claim is that ``client_mode="batch"`` — one scheduler
entry driving every homogeneous client slot — is an *optimization*,
not a semantic change: same seed, same knobs must produce bit-identical
statistics, the same chain (per-height block hashes included), and the
same queue series as N independent coroutine clients. These tests pin
that equivalence on multiple platforms, in every driver mode the
closed loop supports, and over hypothesis-drawn configurations.
"""

import subprocess
import sys
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Driver, DriverConfig, ExperimentSpec, run_experiment
from repro.platforms import build_cluster
from repro.workloads import make_workload


def _spec(platform: str, **overrides) -> ExperimentSpec:
    base = ExperimentSpec(
        platform=platform,
        workload="ycsb",
        n_servers=4,
        n_clients=2,
        request_rate_tx_s=80.0,
        duration_s=12.0,
        seed=9,
    )
    return replace(base, **overrides)


def _run_both(spec: ExperimentSpec):
    coroutine = run_experiment(replace(spec, client_mode="coroutine"))
    batch = run_experiment(replace(spec, client_mode="batch"))
    return coroutine, batch


@pytest.mark.parametrize("platform", ["hyperledger", "ethereum"])
def test_batch_bit_identical_summary_and_chain(platform):
    coroutine, batch = _run_both(_spec(platform))
    assert coroutine.summary == batch.summary
    assert coroutine.chain_height == batch.chain_height
    assert coroutine.total_blocks == batch.total_blocks
    assert coroutine.queue_series == batch.queue_series
    assert coroutine.summary.confirmed > 0


def test_batch_identical_under_subscribe_feed():
    coroutine, batch = _run_both(_spec("erisdb", subscribe=True))
    assert coroutine.summary == batch.summary
    assert coroutine.chain_height == batch.chain_height
    assert coroutine.summary.confirmed > 0


def test_batch_identical_in_blocking_mode():
    coroutine, batch = _run_both(
        _spec("hyperledger", n_clients=2, request_rate_tx_s=500.0,
              duration_s=10.0, blocking=True)
    )
    assert coroutine.summary == batch.summary
    assert coroutine.summary.confirmed > 0


def test_batch_identical_under_rejection_retry_pressure():
    coroutine, batch = _run_both(
        _spec("parity", n_servers=1, n_clients=2,
              request_rate_tx_s=150.0, duration_s=8.0)
    )
    assert coroutine.summary.rejected > 0  # the backoff path actually ran
    assert coroutine.summary == batch.summary


def test_batch_preserves_per_height_block_roots():
    """Not just the aggregates: every block hash at every height must
    match, or the two paths ordered transactions differently.

    Each mode runs in its own interpreter: transaction ids embed a
    process-global nonce counter, so two runs in one process differ
    trivially regardless of mode — a fresh process per run isolates
    the comparison to what the client implementation actually does.
    """
    program = (
        "from repro.core import Driver, DriverConfig;"
        "from repro.platforms import build_cluster;"
        "from repro.workloads import make_workload;"
        "import sys;"
        "cluster = build_cluster('hyperledger', 4, seed=9);"
        "driver = Driver(cluster, make_workload('ycsb'),"
        " DriverConfig(n_clients=2, request_rate_tx_s=80.0,"
        " duration_s=10.0, client_mode=sys.argv[1]));"
        "driver.prepare(); driver.run();"
        "chain = cluster.nodes[0].chain();"
        "print('\\n'.join(chain.block_by_height(h).hash.hex()"
        " for h in range(chain.height + 1)))"
    )
    hashes = {}
    for mode in ("coroutine", "batch"):
        hashes[mode] = subprocess.run(
            [sys.executable, "-c", program, mode],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    assert hashes["coroutine"].count("\n") > 1
    assert hashes["coroutine"] == hashes["batch"]


def test_batch_reports_one_collector_per_slot():
    """Per-slot StatsCollectors survive the vectorization: the merged
    view is derived, not the storage, so per-client breakdowns remain
    possible."""
    cluster = build_cluster("hyperledger", 2, seed=3)
    driver = Driver(
        cluster,
        make_workload("ycsb"),
        DriverConfig(n_clients=5, request_rate_tx_s=20.0, duration_s=4.0,
                     client_mode="batch"),
    )
    driver.prepare()
    assert len(driver.clients) == 1  # one vectorized client...
    assert len(driver.clients[0].stat_collectors()) == 5  # ...five slots
    cluster.close()


@settings(max_examples=8, deadline=None)
@given(
    platform=st.sampled_from(["hyperledger", "ethereum"]),
    n_clients=st.integers(min_value=1, max_value=4),
    rate=st.sampled_from([30.0, 75.0, 120.0]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_batch_equivalence_over_drawn_configs(platform, n_clients, rate, seed):
    """Hypothesis sweep: whatever the (platform, fleet size, rate,
    seed), batch and coroutine runs must be indistinguishable."""
    spec = _spec(
        platform,
        n_clients=n_clients,
        request_rate_tx_s=rate,
        duration_s=8.0,
        seed=seed,
    )
    coroutine, batch = _run_both(spec)
    assert coroutine.summary == batch.summary
    assert coroutine.chain_height == batch.chain_height
    assert coroutine.queue_series == batch.queue_series
