"""The portable ``read_ratio`` knob: one dial over each workload's mix.

Pins the per-workload translation (YCSB proportions, Smallbank's
balance-query fraction), the refusal path for fixed-mix workloads, the
spec-level conflict check against explicit ``workload_params``, and the
scenario-axis expansion that sweeps the knob across a grid.
"""

import pytest

from repro.core import ExperimentSpec, ScenarioSpec, run_experiment
from repro.core.runner import _read_ratio_params
from repro.errors import BenchmarkError
from repro.workloads import make_workload
from repro.workloads.smallbank import _OPERATIONS, SmallbankWorkload
from repro.workloads.ycsb import YCSBWorkload


def test_ycsb_translation_sets_the_proportions():
    assert YCSBWorkload.read_ratio_params(0.75) == {
        "read_proportion": 0.75,
        "update_proportion": 0.25,
    }
    workload = make_workload("ycsb", **YCSBWorkload.read_ratio_params(0.75))
    assert workload.config.read_proportion == 0.75
    assert workload.config.update_proportion == 0.25


def test_smallbank_translation_scales_the_write_ops():
    workload = make_workload(
        "smallbank", **SmallbankWorkload.read_ratio_params(0.9)
    )
    ops = dict(workload._operations)
    assert ops["balance"] == pytest.approx(0.9)
    # The five write ops keep their relative shares of the remainder.
    assert sum(ops.values()) == pytest.approx(1.0)
    assert ops["send_payment"] == pytest.approx(0.1 * 0.25 / 0.85)


def test_smallbank_default_mix_is_untouched():
    workload = make_workload("smallbank")
    assert workload._operations is _OPERATIONS


def test_fixed_mix_workloads_refuse_the_knob():
    with pytest.raises(BenchmarkError, match="fixed operation mix"):
        _read_ratio_params("donothing", 0.5, {})


def test_out_of_range_ratio_is_rejected():
    with pytest.raises(BenchmarkError, match="read_ratio must be in"):
        _read_ratio_params("ycsb", 1.5, {})


def test_conflicting_workload_params_are_a_spec_error():
    with pytest.raises(BenchmarkError, match="conflicts with explicit"):
        _read_ratio_params("ycsb", 0.5, {"read_proportion": 0.3})


def test_run_experiment_applies_the_ratio():
    spec = ExperimentSpec(
        platform="hyperledger", workload="ycsb", n_servers=2, n_clients=2,
        request_rate_tx_s=20.0, duration_s=5.0, seed=3, read_ratio=0.9,
    )
    result = run_experiment(spec)
    assert result.summary.confirmed > 0
    # The knob reaches the workload: a different mix changes the
    # charged execution costs, so the stage breakdown moves with it.
    heavy = run_experiment(
        ExperimentSpec(
            platform="hyperledger", workload="ycsb", n_servers=2,
            n_clients=2, request_rate_tx_s=20.0, duration_s=5.0, seed=3,
            read_ratio=0.1,
        )
    )
    light_avgs = result.summary.stage_breakdown.stage_avgs()
    heavy_avgs = heavy.summary.stage_breakdown.stage_avgs()
    assert heavy_avgs["execution"] > light_avgs["execution"]


def test_scenario_axis_expands_and_labels():
    specs = ScenarioSpec(
        platforms="hyperledger", workloads="ycsb", servers=2, clients=2,
        rates=20, durations=5, seeds=3, read_ratios=[0.1, 0.9],
    ).expand()
    assert [spec.read_ratio for spec in specs] == [0.1, 0.9]
    assert [spec.label for spec in specs] == ["rr=0.1", "rr=0.9"]
    assert all(spec.trace_stages for spec in specs)


def test_scenario_single_ratio_has_no_label():
    specs = ScenarioSpec(
        platforms="hyperledger", workloads="ycsb", servers=2, clients=2,
        rates=20, durations=5, seeds=3, read_ratios=0.5,
    ).expand()
    assert len(specs) == 1
    assert specs[0].read_ratio == 0.5
    assert specs[0].label == ""


def test_scenario_trace_stages_knob_reaches_the_spec():
    specs = ScenarioSpec(
        platforms="hyperledger", workloads="ycsb", servers=2, clients=2,
        rates=20, durations=5, seeds=3, trace_stages=False,
    ).expand()
    assert [spec.trace_stages for spec in specs] == [False]
