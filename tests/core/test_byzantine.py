"""Byzantine fault injection and the chain safety auditor."""

import pytest

from repro.chain.block import Block
from repro.core import (
    BYZANTINE_BEHAVIORS,
    ByzantineFault,
    ChainAuditor,
    DelayFault,
    ExperimentSpec,
    FaultSchedule,
    run_experiment,
    spec_hash,
)
from repro.core.scenario import ScenarioSpec, _faults_axis, _faults_label
from repro.core.suitestore import _canonical_faults
from repro.errors import BenchmarkError
from repro.platforms import build_cluster
from repro.sim.network import NetworkError


# ---------------------------------------------------------------------------
# Auditor unit tests (no cluster: a stub network and hand-built blocks)
# ---------------------------------------------------------------------------
class _StubNetwork:
    def __init__(self, nodes, byzantine=()):
        self._nodes = list(nodes)
        self.ever_byzantine = set(byzantine)

    def node_ids(self):
        return list(self._nodes)


def _block(height, proposer="server-0", meta=None):
    return Block.build(
        height=height,
        parent_hash=b"\x00" * 32,
        transactions=[],
        state_root=b"\x11" * 32,
        proposer=proposer,
        timestamp=float(height),
        consensus_meta=meta,
    )


def test_auditor_agreement_is_safe():
    auditor = ChainAuditor(_StubNetwork(["a", "b"]))
    block = _block(1)
    auditor.record_commit("a", block, 1.0)
    auditor.record_commit("b", block, 1.1)
    report = auditor.report()
    assert report.safe
    assert report.commits_checked == 2
    assert report.honest_nodes == 2
    assert report.byzantine_nodes == []


def test_auditor_flags_fork_between_honest_replicas():
    auditor = ChainAuditor(_StubNetwork(["a", "b"]))
    auditor.record_commit("a", _block(5, proposer="a"), 1.0)
    auditor.record_commit("b", _block(5, proposer="b"), 1.2)
    report = auditor.report()
    assert not report.safe
    (violation,) = report.violations
    assert violation.kind == "fork"
    assert violation.height == 5
    assert violation.nodes == ["a", "b"]


def test_auditor_dedupes_repeated_fork_commits():
    auditor = ChainAuditor(_StubNetwork(["a", "b", "c"]))
    left, right = _block(3, proposer="a"), _block(3, proposer="b")
    auditor.record_commit("a", left, 1.0)
    auditor.record_commit("b", right, 1.1)
    auditor.record_commit("c", right, 1.2)  # same pair of hashes again
    assert len(auditor.report().violations) == 1


def test_auditor_ignores_byzantine_commits():
    """A liar's local chain never enters the agreement record."""
    auditor = ChainAuditor(_StubNetwork(["a", "b"], byzantine={"b"}))
    auditor.record_commit("a", _block(2, proposer="a"), 1.0)
    auditor.record_commit("b", _block(2, proposer="b"), 1.1)
    report = auditor.report()
    assert report.safe
    assert report.honest_nodes == 1
    assert report.byzantine_nodes == ["b"]


def test_auditor_flags_garbage_digest_commit():
    auditor = ChainAuditor(_StubNetwork(["a"]))
    auditor.record_commit("a", _block(1, meta={"byz": "garbage:1"}), 1.0)
    (violation,) = auditor.report().violations
    assert violation.kind == "garbage_digest"


def test_auditor_flags_height_regression():
    auditor = ChainAuditor(_StubNetwork(["a"]))
    auditor.record_commit("a", _block(2), 1.0)
    auditor.record_commit("a", _block(2, proposer="x"), 2.0)
    kinds = [v.kind for v in auditor.report().violations]
    assert "height_regression" in kinds
    regression = next(
        v for v in auditor.violations if v.kind == "height_regression"
    )
    assert regression.nodes == ["a"]


def test_auditor_records_fault_context():
    auditor = ChainAuditor(_StubNetwork(["a", "b"]))
    auditor.fault_started("equivocate x2")
    auditor.record_commit("a", _block(4, proposer="a"), 1.0)
    auditor.record_commit("b", _block(4, proposer="b"), 1.1)
    auditor.fault_ended("equivocate x2")
    (violation,) = auditor.report().violations
    assert violation.fault_context == "equivocate x2"


# ---------------------------------------------------------------------------
# Network send interception
# ---------------------------------------------------------------------------
def test_send_filter_drops_and_taints():
    cluster = build_cluster("hyperledger", 2, seed=3)
    network = cluster.network
    network.set_send_filter("server-0", lambda r, k, p, s: None)
    network.send("server-0", "server-1", "PREPARE", {"x": 1})
    assert network.stats.dropped_byzantine == 1
    network.clear_send_filter("server-0")
    network.send("server-0", "server-1", "PREPARE", {"x": 1})
    assert network.stats.dropped_byzantine == 1  # filter gone
    assert "server-0" in network.ever_byzantine  # but the taint stays
    cluster.close()


def test_send_filter_rejects_unknown_node():
    cluster = build_cluster("hyperledger", 2, seed=3)
    with pytest.raises(NetworkError):
        cluster.network.set_send_filter("nope", lambda r, k, p, s: None)
    cluster.close()


def test_unknown_behavior_rejected_at_arm_time():
    cluster = build_cluster("hyperledger", 4, seed=3)
    schedule = FaultSchedule(
        byzantines=[ByzantineFault(1.0, 2.0, behavior="confuse")]
    )
    with pytest.raises(BenchmarkError, match="confuse"):
        schedule.arm(cluster)
    cluster.close()


def test_behavior_registry_has_the_documented_strategies():
    assert {"equivocate", "garbage_digest", "silent", "delay_votes"} <= set(
        BYZANTINE_BEHAVIORS
    )


# ---------------------------------------------------------------------------
# End-to-end: behaviors against real protocols, auditor always on
# ---------------------------------------------------------------------------
def _byzantine_spec(platform, behavior, count, duration=12.0, rate=20.0):
    return ExperimentSpec(
        platform=platform,
        workload="ycsb",
        n_servers=4,
        n_clients=4,
        request_rate_tx_s=rate,
        duration_s=duration,
        seed=7,
        faults=FaultSchedule(
            byzantines=[
                ByzantineFault(
                    at_time=duration / 4,
                    until_time=duration * 3 / 4,
                    behavior=behavior,
                    count=count,
                )
            ]
        ),
    )


@pytest.mark.parametrize("platform", ["hyperledger", "erisdb", "parity"])
@pytest.mark.parametrize(
    "behavior", ["equivocate", "garbage_digest", "silent", "delay_votes"]
)
def test_one_byzantine_node_never_breaks_safety(platform, behavior):
    """f=1 on n=4: every behavior, every protocol — zero violations."""
    result = run_experiment(_byzantine_spec(platform, behavior, count=1))
    assert result.safety_violations == 0
    assert result.safety_report is not None
    assert result.safety_report["safe"]
    assert result.safety_report["byzantine_nodes"] == ["server-0"]
    assert result.summary.safety_violations == 0


def test_pbft_commits_through_single_equivocator():
    """f=1 <= (n-1)/3: the quorum still commits during the attack."""
    result = run_experiment(
        _byzantine_spec("hyperledger", "equivocate", count=1, duration=20.0)
    )
    assert result.safety_violations == 0
    assert result.summary.confirmed > 0


def test_pbft_two_equivocators_fork_and_auditor_sees_it():
    """f=2 > (n-1)/3 colluding equivocators: honest replicas finalize
    conflicting blocks, and the auditor pins the fork to the fault."""
    result = run_experiment(
        _byzantine_spec(
            "hyperledger", "equivocate", count=2, duration=30.0, rate=50.0
        )
    )
    assert result.safety_violations >= 1
    report = result.safety_report
    assert not report["safe"]
    forks = [v for v in report["violations"] if v["kind"] == "fork"]
    assert forks
    # Only honest replicas appear in the fork record.
    for fork in forks:
        assert set(fork["nodes"]).isdisjoint({"server-0", "server-1"})
        assert "equivocate x2" in fork["fault_context"]
    assert result.summary.safety_violations == result.safety_violations


def test_byzantine_runs_are_deterministic():
    """Two runs of the same spec replay the same timeline: identical
    throughput and the same violations at the same heights and times.
    (Block hashes differ — tx ids come from a process-global counter —
    so the comparison is structural, not byte-for-byte.)"""

    def shape(report):
        return [
            (v["kind"], v["height"], v["at_time"], v["fault_context"],
             sorted(v["nodes"]))
            for v in report["violations"]
        ]

    first = run_experiment(_byzantine_spec("hyperledger", "equivocate", count=2))
    second = run_experiment(
        _byzantine_spec("hyperledger", "equivocate", count=2)
    )
    assert first.summary.confirmed == second.summary.confirmed
    assert first.summary.throughput_tx_s == second.summary.throughput_tx_s
    assert first.safety_violations == second.safety_violations
    assert shape(first.safety_report) == shape(second.safety_report)


# ---------------------------------------------------------------------------
# Scenario axis + labels, spec-hash stability
# ---------------------------------------------------------------------------
def test_faults_label_shapes():
    assert _faults_label({}) == "no-faults"
    assert (
        _faults_label({"byzantines": [{"behavior": "equivocate", "count": 2}]})
        == "byz=equivocate:2"
    )
    assert (
        _faults_label({"byzantines": [{"nodes": ["server-0", "server-1"]}]})
        == "byz=equivocate:2"
    )
    assert (
        _faults_label({"crashes": [{"count": 1}], "delays": [{"extra_s": 0.5}]})
        == "crash=1,delay=0.5s"
    )


def test_faults_axis_validation():
    assert _faults_axis(None) == [None]
    assert _faults_axis({"crashes": []}) == [{"crashes": []}]
    with pytest.raises(BenchmarkError):
        _faults_axis([])
    with pytest.raises(BenchmarkError):
        _faults_axis(["not-a-dict"])
    with pytest.raises(BenchmarkError):
        _faults_axis([{"byzantines": [{"behavior": "bogus"}]}])


def test_scenario_faults_axis_expands_to_grid_points():
    spec = ScenarioSpec(
        name="byz-sweep",
        platforms="hyperledger",
        servers=4,
        rates=50.0,
        durations=10.0,
        seeds=7,
        faults=[
            {},
            {"byzantines": [{"at_time": 2.0, "until_time": 8.0, "count": 1}]},
            {"byzantines": [{"at_time": 2.0, "until_time": 8.0, "count": 2}]},
        ],
    )
    expanded = spec.expand()
    assert len(expanded) == 3
    schedules = [e.faults for e in expanded]
    # The {} control point builds an empty (no-op) schedule.
    assert not schedules[0].byzantines and not schedules[0].crashes
    assert len(schedules[1].byzantines) == 1
    assert schedules[1].byzantines[0].count == 1
    assert schedules[2].byzantines[0].count == 2
    # Fresh schedule per grid point — no shared mutable runtime state.
    assert schedules[1] is not schedules[2]


def test_scalar_faults_dict_still_applies_to_every_point():
    spec = ScenarioSpec(
        name="scalar",
        platforms=["hyperledger", "parity"],
        servers=4,
        faults={"crashes": [{"at_time": 5.0, "count": 1}]},
    )
    expanded = spec.expand()
    assert len(expanded) == 2
    assert all(len(e.faults.crashes) == 1 for e in expanded)


def test_empty_byzantines_does_not_move_spec_hashes():
    """Pre-byzantine fault specs must keep their content addresses."""
    schedule = FaultSchedule(delays=[DelayFault(1.0, 2.0, extra_s=0.1)])
    canon = _canonical_faults(schedule)
    assert "byzantines" not in canon
    assert "byzantine_node_ids" not in canon
    assert "crashed_node_ids" not in canon
    with_field = ExperimentSpec(faults=schedule)
    explicit = ExperimentSpec(
        faults=FaultSchedule(
            delays=[DelayFault(1.0, 2.0, extra_s=0.1)], byzantines=[]
        )
    )
    assert spec_hash(with_field) == spec_hash(explicit)


def test_byzantine_schedule_does_enter_the_spec_hash():
    base = ExperimentSpec(faults=FaultSchedule())
    byz = ExperimentSpec(
        faults=FaultSchedule(byzantines=[ByzantineFault(1.0, 2.0)])
    )
    assert spec_hash(base) != spec_hash(byz)
