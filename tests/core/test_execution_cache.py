"""Cross-replica execution memoization tests (PR 5).

The simulator is deterministic, so replicas executing the same block
from the same pre-state root must produce identical results; the
:class:`~repro.platforms.base.ExecutionCache` makes replicas 2..N
replay the first replica's recorded write-set instead of re-running
the contracts. These tests pin the semantic contract: **cache on and
cache off are byte-identical** — same StatsSummary, same chain height,
same per-node state roots — on all four platforms.
"""

from dataclasses import asdict

import pytest

from repro.core import Driver, DriverConfig
from repro.core.runner import ExperimentSpec, run_experiment
from repro.platforms import ExecutionCache, build_cluster
from repro.platforms.base import CachedExecution
from repro.workloads import YCSBConfig, YCSBWorkload

#: Kept small: the differential runs every platform twice.
DURATION_S = {
    "hyperledger": 12.0,
    "ethereum": 15.0,
    "parity": 12.0,
    "erisdb": 12.0,
}


def _run(platform: str, cache_on: bool):
    spec = ExperimentSpec(
        platform=platform,
        workload="ycsb",
        n_servers=4,
        n_clients=2,
        request_rate_tx_s=40.0,
        duration_s=DURATION_S[platform],
        seed=5,
        config_overrides={"execution_cache": cache_on},
    )
    return run_experiment(spec)


@pytest.mark.parametrize(
    "platform", ["hyperledger", "ethereum", "parity", "erisdb"]
)
def test_cache_on_vs_off_is_byte_identical(platform):
    on = _run(platform, True)
    off = _run(platform, False)
    assert asdict(on.summary) == asdict(off.summary)
    assert on.chain_height == off.chain_height
    assert on.total_blocks == off.total_blocks


@pytest.mark.parametrize(
    "platform", ["hyperledger", "ethereum", "parity", "erisdb"]
)
def test_cache_replicas_agree_on_state_roots(platform):
    """With the cache on, every node's committed roots match the
    cache-off run of the same seed, height by height."""

    def roots(cache_on):
        cluster = build_cluster(
            platform, 4, seed=5,
            config_overrides={"execution_cache": cache_on},
        )
        driver = Driver(
            cluster,
            YCSBWorkload(YCSBConfig(record_count=50)),
            DriverConfig(
                n_clients=2, request_rate_tx_s=40,
                duration_s=DURATION_S[platform],
            ),
        )
        driver.run()
        per_node = [dict(node._height_roots) for node in cluster.nodes]
        cluster.close()
        return per_node

    on, off = roots(True), roots(False)
    assert on == off
    # And the run actually executed blocks on every node.
    assert all(node_roots for node_roots in on)


def test_cache_is_hit_by_replicas():
    cluster = build_cluster("hyperledger", 4, seed=5)
    driver = Driver(
        cluster,
        YCSBWorkload(YCSBConfig(record_count=50)),
        DriverConfig(n_clients=2, request_rate_tx_s=40, duration_s=12.0),
    )
    driver.run()
    cache = cluster.nodes[0].execution_cache
    assert cache is not None
    assert all(node.execution_cache is cache for node in cluster.nodes)
    # 4 replicas execute every block: 1 miss (the first executor) and
    # 3 hits per block.
    assert cache.misses > 0
    assert cache.hits == 3 * cache.misses
    cluster.close()


def test_cache_knob_off_detaches_cache():
    cluster = build_cluster(
        "hyperledger", 2, seed=1,
        config_overrides={"execution_cache": False},
    )
    assert all(node.execution_cache is None for node in cluster.nodes)
    cluster.close()


def test_cache_is_per_cluster_not_global():
    a = build_cluster("hyperledger", 2, seed=1)
    b = build_cluster("hyperledger", 2, seed=1)
    assert a.nodes[0].execution_cache is not b.nodes[0].execution_cache
    a.close()
    b.close()


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------
def test_execution_cache_lookup_and_counters():
    cache = ExecutionCache(capacity=2)
    entry = CachedExecution(
        write_set=((b"k", b"v"),),
        receipts=(("tx1", True, 21_000, None, ""),),
    )
    assert cache.lookup(b"root", b"block") is None
    cache.store(b"root", b"block", entry)
    assert cache.lookup(b"root", b"block") is entry
    assert cache.lookup(b"other-root", b"block") is None  # pre-state keyed
    assert cache.lookup(b"root", b"other-block") is None  # block keyed
    assert (cache.hits, cache.misses) == (1, 3)


def test_execution_cache_evicts_beyond_capacity():
    cache = ExecutionCache(capacity=2)
    entry = CachedExecution(write_set=(), receipts=())
    for i in range(3):
        cache.store(b"root%d" % i, b"block", entry)
    assert cache.lookup(b"root0", b"block") is None  # evicted (LRU)
    assert cache.lookup(b"root2", b"block") is entry
