"""Cross-replica execution memoization tests (PR 5).

The simulator is deterministic, so replicas executing the same block
from the same pre-state root must produce identical results; the
:class:`~repro.platforms.base.ExecutionCache` makes replicas 2..N
replay the first replica's recorded write-set instead of re-running
the contracts. These tests pin the semantic contract: **cache on and
cache off are byte-identical** — same StatsSummary, same chain height,
same per-node state roots — on all four platforms.
"""

from dataclasses import asdict

import pytest

from repro.core import Driver, DriverConfig
from repro.core.runner import ExperimentSpec, run_experiment
from repro.platforms import ExecutionCache, build_cluster
from repro.platforms.base import CachedExecution
from repro.workloads import YCSBConfig, YCSBWorkload

#: Kept small: the differential runs every platform twice.
DURATION_S = {
    "hyperledger": 12.0,
    "ethereum": 15.0,
    "parity": 12.0,
    "erisdb": 12.0,
}


def _run(platform: str, cache_on: bool):
    spec = ExperimentSpec(
        platform=platform,
        workload="ycsb",
        n_servers=4,
        n_clients=2,
        request_rate_tx_s=40.0,
        duration_s=DURATION_S[platform],
        seed=5,
        config_overrides={"execution_cache": cache_on},
    )
    return run_experiment(spec)


@pytest.mark.parametrize(
    "platform", ["hyperledger", "ethereum", "parity", "erisdb"]
)
def test_cache_on_vs_off_is_byte_identical(platform):
    on = _run(platform, True)
    off = _run(platform, False)
    assert asdict(on.summary) == asdict(off.summary)
    assert on.chain_height == off.chain_height
    assert on.total_blocks == off.total_blocks


@pytest.mark.parametrize(
    "platform", ["hyperledger", "ethereum", "parity", "erisdb"]
)
def test_cache_replicas_agree_on_state_roots(platform):
    """With the cache on, every node's committed roots match the
    cache-off run of the same seed, height by height."""

    def roots(cache_on):
        cluster = build_cluster(
            platform, 4, seed=5,
            config_overrides={"execution_cache": cache_on},
        )
        driver = Driver(
            cluster,
            YCSBWorkload(YCSBConfig(record_count=50)),
            DriverConfig(
                n_clients=2, request_rate_tx_s=40,
                duration_s=DURATION_S[platform],
            ),
        )
        driver.run()
        per_node = [dict(node._height_roots) for node in cluster.nodes]
        cluster.close()
        return per_node

    on, off = roots(True), roots(False)
    assert on == off
    # And the run actually executed blocks on every node.
    assert all(node_roots for node_roots in on)


def test_cache_is_hit_by_replicas():
    cluster = build_cluster("hyperledger", 4, seed=5)
    driver = Driver(
        cluster,
        YCSBWorkload(YCSBConfig(record_count=50)),
        DriverConfig(n_clients=2, request_rate_tx_s=40, duration_s=12.0),
    )
    driver.run()
    cache = cluster.nodes[0].execution_cache
    assert cache is not None
    assert all(node.execution_cache is cache for node in cluster.nodes)
    # 4 replicas execute every block: 1 miss (the first executor) and
    # 3 hits per block.
    assert cache.misses > 0
    assert cache.hits == 3 * cache.misses
    cluster.close()


def test_cache_knob_off_detaches_cache():
    cluster = build_cluster(
        "hyperledger", 2, seed=1,
        config_overrides={"execution_cache": False},
    )
    assert all(node.execution_cache is None for node in cluster.nodes)
    cluster.close()


def test_cache_is_per_cluster_not_global():
    a = build_cluster("hyperledger", 2, seed=1)
    b = build_cluster("hyperledger", 2, seed=1)
    assert a.nodes[0].execution_cache is not b.nodes[0].execution_cache
    a.close()
    b.close()


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------
def test_execution_cache_lookup_and_counters():
    cache = ExecutionCache(capacity=2)
    entry = CachedExecution(
        write_set=((b"k", b"v"),),
        receipts=(("tx1", True, 21_000, None, ""),),
    )
    assert cache.lookup(b"root", b"block") is None
    cache.store(b"root", b"block", entry)
    assert cache.lookup(b"root", b"block") is entry
    assert cache.lookup(b"other-root", b"block") is None  # pre-state keyed
    assert cache.lookup(b"root", b"other-block") is None  # block keyed
    assert (cache.hits, cache.misses) == (1, 3)


def test_execution_cache_evicts_beyond_capacity():
    cache = ExecutionCache(capacity=2)
    entry = CachedExecution(write_set=(), receipts=())
    for i in range(3):
        cache.store(b"root%d" % i, b"block", entry)
    assert cache.lookup(b"root0", b"block") is None  # evicted (LRU)
    assert cache.lookup(b"root2", b"block") is entry


# ---------------------------------------------------------------------------
# Worker-count insensitivity (PR 9)
# ---------------------------------------------------------------------------
def _cached_node(workers, shared_cache):
    """One node with the given exec_workers, wired to a shared cache."""
    from repro.platforms import build_cluster as _build

    cluster = _build(
        "hyperledger", 1, seed=5,
        config_overrides={"exec_workers": workers},
    )
    node = cluster.nodes[0]
    node.execution_cache = shared_cache
    return cluster, node


def _mixed_block(node, n=24, hot_every=3):
    """A block mixing independent keys with a hot-key chain."""
    from repro.chain.block import Block
    from repro.chain.transaction import Transaction

    txs = tuple(
        Transaction.create(
            sender=f"acct{i % 4}",
            contract="kvstore",
            function="write",
            args=("hot" if i % hot_every == 0 else f"k{i}", f"v{i}"),
            nonce=i,
        )
        for i in range(n)
    )
    genesis = node.chain().block_by_height(0)
    return Block.build(
        height=1, parent_hash=genesis.hash, transactions=txs,
        state_root=b"", proposer=node.node_id, timestamp=1.0,
    )


@pytest.mark.parametrize(
    "populate_workers,replay_workers",
    [(4, 1), (1, 4)],
    ids=["parallel-populates-serial-replays",
         "serial-populates-parallel-replays"],
)
def test_cache_entries_cross_worker_counts(populate_workers, replay_workers):
    """A cache entry is a pure function of (pre-state, block), never of
    the executing replica's worker count: a parallel-populated entry
    replayed by a serial replica (and vice versa) yields byte-identical
    roots and receipts."""
    shared = ExecutionCache()
    pop_cluster, populator = _cached_node(populate_workers, shared)
    block = _mixed_block(populator)
    pre_root = populator.state.pre_state_root()
    populator._execute_block(block)
    assert shared.misses == 1 and shared.hits == 0
    entry = shared.lookup(pre_root, block.hash)
    assert entry is not None
    # Parallel executors record the schedule; serial ones record None.
    if populate_workers > 1:
        assert entry.levels is not None and max(entry.levels) > 1
    else:
        assert entry.levels is None

    rep_cluster, replayer = _cached_node(replay_workers, shared)
    replayer._execute_block(block)
    assert shared.hits >= 2  # replayer's lookup (plus the assert above)
    assert replayer._height_roots[1] == populator._height_roots[1]
    assert {
        t: (r.success, r.gas_used, r.output, r.error)
        for t, r in replayer.receipts.items()
    } == {
        t: (r.success, r.gas_used, r.output, r.error)
        for t, r in populator.receipts.items()
    }
    pop_cluster.close()
    rep_cluster.close()


def test_cache_entries_identical_whoever_executes():
    """Serially- and parallel-executed caches hold byte-identical
    write-sets and receipts for the same block; only the optional
    schedule annotation differs."""
    serial_cache, parallel_cache = ExecutionCache(), ExecutionCache()
    s_cluster, serial_node = _cached_node(1, serial_cache)
    p_cluster, parallel_node = _cached_node(4, parallel_cache)
    block = _mixed_block(serial_node)
    s_pre = serial_node.state.pre_state_root()
    p_pre = parallel_node.state.pre_state_root()
    assert s_pre == p_pre  # same seed, same genesis
    serial_node._execute_block(block)
    parallel_node._execute_block(block)
    s_entry = serial_cache.lookup(s_pre, block.hash)
    p_entry = parallel_cache.lookup(p_pre, block.hash)
    assert s_entry is not None and p_entry is not None
    assert s_entry.write_set == p_entry.write_set
    assert s_entry.receipts == p_entry.receipts
    assert s_entry.levels is None
    assert p_entry.levels is not None
    s_cluster.close()
    p_cluster.close()


def test_parallel_replayer_charges_the_shared_schedule():
    """Two parallel replicas sharing a cache charge identical CPU: the
    replayer recomputes the makespan from the cached levels instead of
    falling back to the serial sum."""
    shared = ExecutionCache()
    a_cluster, node_a = _cached_node(4, shared)
    b_cluster, node_b = _cached_node(4, shared)
    block = _mixed_block(node_a)
    node_a._execute_block(block)  # executes for real
    node_b._execute_block(block)  # replays the entry
    assert shared.hits >= 1
    assert node_b._height_roots[1] == node_a._height_roots[1]
    assert node_b.cpu_time == node_a.cpu_time
    a_cluster.close()
    b_cluster.close()
