"""Unit tests for report formatting."""

from repro.core import SUMMARY_HEADERS, StatsCollector, format_table, summary_row


def test_format_table_alignment():
    table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
    lines = table.splitlines()
    assert lines[0].startswith("+")
    assert "| a " in lines[1]
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all rows same width


def test_format_table_title():
    table = format_table(["x"], [[1]], title="My Title")
    assert table.splitlines()[0] == "My Title"


def test_float_rendering():
    table = format_table(["v"], [[1234.5], [0.1234], [3.14159], [0.0]])
    assert "1,235" in table or "1,234" in table
    assert "0.1234" in table
    assert "3.14" in table


def test_summary_row_matches_headers():
    collector = StatsCollector("eth", "ycsb")
    collector.begin(0.0)
    collector.finish(10.0)
    row = summary_row(collector.summary())
    assert len(row) == len(SUMMARY_HEADERS)
    assert row[0] == "eth"
    assert row[1] == "ycsb"
