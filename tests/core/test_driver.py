"""Integration tests for the BLOCKBENCH driver and connector."""

import pytest

from repro.core import Driver, DriverConfig, RPCClient, SimChainConnector
from repro.errors import ConnectorError
from repro.platforms import build_cluster
from repro.workloads import DoNothingWorkload, YCSBConfig, YCSBWorkload


@pytest.fixture
def cluster():
    c = build_cluster("hyperledger", 4, seed=9)
    yield c
    c.close()


def test_driver_end_to_end(cluster):
    driver = Driver(
        cluster,
        YCSBWorkload(YCSBConfig(record_count=50)),
        DriverConfig(n_clients=2, request_rate_tx_s=40, duration_s=15),
    )
    stats = driver.run()
    assert stats.confirmed > 100
    assert stats.submitted >= stats.confirmed
    assert stats.latency_avg() > 0
    assert stats.latency_percentile(99) >= stats.latency_percentile(50)


def test_driver_measures_queue(cluster):
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=2, request_rate_tx_s=20, duration_s=10),
    )
    driver.run()
    series = driver.queue_series()
    assert len(series) >= 8
    times = [t for t, _ in series]
    assert times == sorted(times)


def test_blocking_mode_serializes(cluster):
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=1, request_rate_tx_s=1000, duration_s=15, blocking=True),
    )
    stats = driver.run()
    # One tx at a time: confirmations bounded by latency, far below rate.
    assert 0 < stats.confirmed < 100


def test_clients_spread_across_servers(cluster):
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=8, request_rate_tx_s=5, duration_s=5),
    )
    driver.prepare()
    servers = {client.server_id for client in driver.clients}
    assert len(servers) == 4  # 8 clients round-robin onto 4 servers


def test_thread_flow_control_limits_inflight(cluster):
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(
            n_clients=1, request_rate_tx_s=5000, duration_s=5, threads_per_client=4
        ),
    )
    driver.prepare()
    client = driver.clients[0]
    client.start(5.0)
    cluster.run_until(2.0)
    assert client._inflight_submissions <= 4
    assert len(client.backlog) > 0  # overload queues locally


def test_rpc_client_timeout():
    cluster = build_cluster("hyperledger", 2, seed=9)
    client = RPCClient("c0", cluster.scheduler, cluster.network)
    cluster.nodes[0].crash()
    replies = []
    client.request(
        "server-0", "rpc/send_tx", {"tx": None}, replies.append, timeout_s=2.0
    )
    cluster.run_until(5.0)
    assert replies == [{"accepted": False, "timeout": True, "req_id": 0}]
    cluster.close()


def test_connector_rejects_unknown_server():
    cluster = build_cluster("hyperledger", 2, seed=9)
    client = RPCClient("c0", cluster.scheduler, cluster.network)
    with pytest.raises(ConnectorError):
        SimChainConnector(cluster, client, "ghost")
    cluster.close()


def test_connector_query_roundtrip(cluster):
    client = RPCClient("c0", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, "server-0")
    replies = []
    connector.query("donothing", "nop", (), replies.append)
    cluster.run_until(1.0)
    assert replies and replies[0]["output"] is True


def test_connector_query_unknown_contract(cluster):
    client = RPCClient("c0", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, "server-0")
    replies = []
    connector.query("nope", "nop", (), replies.append)
    cluster.run_until(1.0)
    assert "error" in replies[0]


def test_get_latest_block_returns_confirmed_only(cluster):
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=1, request_rate_tx_s=50, duration_s=10),
    )
    stats = driver.run()
    client = driver.clients[0]
    # Polling height advanced and matches confirmations.
    assert client._poll_height > 0
    assert stats.confirmed > 0
