"""Differential guarantee: tracing never changes the simulated run.

The digests below were captured on the commit *before* the tracing
subsystem existed, over the canonical JSON of ``result_to_dict`` for one
short run per platform. Two claims are pinned against them:

1. With tracing ON (the default), the run file is the pre-tracing file
   plus exactly one new key — ``summary.stage_breakdown``. Dropping that
   key reproduces the old bytes, so every metric, series, and the spec
   hash itself are untouched.
2. With tracing OFF, the only difference is the (non-default)
   ``trace_stages: false`` knob recorded in the spec; dropping the knob
   and re-keying the hash reproduces the old bytes, and the summary
   carries no ``stage_breakdown`` key at all.

If either digest drifts, tracing leaked into the simulation (a charged
cost, a scheduled event, a perturbed RNG stream) — exactly the bug class
this test exists to catch. Recapture the constants only for a change
that intentionally alters run output.
"""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.core import ExperimentSpec, run_experiment
from repro.core.suitestore import result_to_dict, spec_hash

#: platform -> (pre-tracing spec hash, pre-tracing result digest).
PRE_TRACING = {
    "ethereum": (
        "59364530a45a3b37",
        "ecc357fbf437fb4167d7049ea9a87331383a8be02b22ac7025804d1c20c0b09d",
    ),
    "parity": (
        "93fc37192012b6d6",
        "2bf4794ad83be85ac108721369e5ad09c5dbebce46573aac65018896284517f2",
    ),
    "hyperledger": (
        "561070bd7815281d",
        "cf0aa20da6a91039697c8e68ea2a571e3f78c0a87a81e3cd9402b41427fe3b0a",
    ),
    "erisdb": (
        "82d03abe52c273de",
        "0de299a3507201a93002a9fc5d0e43f29cd043e5c77de55fcce2023a5c12da1f",
    ),
}


def _spec(platform: str) -> ExperimentSpec:
    return ExperimentSpec(
        platform=platform,
        workload="ycsb",
        n_servers=2,
        n_clients=2,
        request_rate_tx_s=20.0,
        duration_s=5.0,
        seed=3,
    )


def _digest(data: dict) -> str:
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@pytest.mark.parametrize("platform", sorted(PRE_TRACING))
def test_tracing_on_adds_only_the_breakdown(platform):
    expected_hash, expected_digest = PRE_TRACING[platform]
    spec = _spec(platform)
    assert spec_hash(spec) == expected_hash
    data = result_to_dict(run_experiment(spec))
    assert "stage_breakdown" in data["summary"]
    data["summary"].pop("stage_breakdown")
    assert _digest(data) == expected_digest


@pytest.mark.parametrize("platform", sorted(PRE_TRACING))
def test_tracing_off_is_byte_identical(platform):
    expected_hash, expected_digest = PRE_TRACING[platform]
    spec = replace(_spec(platform), trace_stages=False)
    data = result_to_dict(run_experiment(spec))
    assert "stage_breakdown" not in data["summary"]
    # The knob itself is the one legitimate spec difference; strip it
    # and the run file must be the pre-tracing bytes.
    assert data["spec"].pop("trace_stages") is False
    data["spec_hash"] = spec_hash(replace(spec, trace_stages=True))
    assert data["spec_hash"] == expected_hash
    assert _digest(data) == expected_digest
