"""Bounded-memory latency reservoir (the ``stats_reservoir`` knob).

Unbounded per-transaction latency lists are what make megaclient runs
impossible to keep in memory; the reservoir caps them at k samples via
seeded Algorithm R while keeping exact counters. These tests pin the
contract: default off = byte-identical to the historical collector,
on = bounded storage, exact counts, deterministic summaries, and
percentiles that stay close to the exact ones.
"""

from dataclasses import replace

import pytest

from repro.core import ExperimentSpec, run_experiment
from repro.core.stats import StatsCollector, merge_collectors


def _fill(collector: StatsCollector, n: int) -> None:
    collector.begin(0.0)
    for i in range(n):
        # Latency ramps linearly 0..10s; submit times advance so the
        # commit-rate buckets see a spread of seconds.
        submitted = i * 0.01
        collector.record_confirmation(submitted, submitted + 10.0 * i / n)
    collector.finish(n * 0.01 + 60.0)


def test_default_collector_is_unbounded_and_exact():
    collector = StatsCollector("p", "w")
    _fill(collector, 5000)
    assert collector.reservoir == 0
    assert len(collector.latencies) == 5000
    assert collector.confirmed == 5000


def test_reservoir_bounds_sample_storage_but_not_counts():
    collector = StatsCollector("p", "w", reservoir=500, reservoir_seed=1)
    _fill(collector, 20_000)
    assert len(collector.latencies) == 500
    assert collector.confirmed == 20_000
    summary = collector.summary()
    assert summary.confirmed == 20_000
    assert summary.throughput_tx_s > 0


def test_reservoir_below_capacity_keeps_every_sample():
    collector = StatsCollector("p", "w", reservoir=1000, reservoir_seed=1)
    _fill(collector, 300)
    exact = StatsCollector("p", "w")
    _fill(exact, 300)
    assert collector.latencies == exact.latencies
    assert collector.summary() == exact.summary()


def test_reservoir_is_deterministic_per_seed():
    a = StatsCollector("p", "w", reservoir=200, reservoir_seed=9)
    b = StatsCollector("p", "w", reservoir=200, reservoir_seed=9)
    _fill(a, 10_000)
    _fill(b, 10_000)
    assert a.latencies == b.latencies
    assert a.summary() == b.summary()
    c = StatsCollector("p", "w", reservoir=200, reservoir_seed=10)
    _fill(c, 10_000)
    assert c.latencies != a.latencies


def test_reservoir_percentiles_track_exact_ones():
    """k=2000 over a linear ramp: rank error is ~1/sqrt(k), so p50/p99
    must land within a few percent of the exact order statistics."""
    sampled = StatsCollector("p", "w", reservoir=2000, reservoir_seed=3)
    exact = StatsCollector("p", "w")
    _fill(sampled, 50_000)
    _fill(exact, 50_000)
    for pct in (50.0, 90.0, 99.0):
        assert sampled.latency_percentile(pct) == pytest.approx(
            exact.latency_percentile(pct), rel=0.05
        )


def test_commit_rate_buckets_survive_sampling():
    """The commits-per-second series is counted exactly (integer
    buckets), not sampled — Figure-style rate plots must not thin out
    when the reservoir engages."""
    sampled = StatsCollector("p", "w", reservoir=100, reservoir_seed=2)
    exact = StatsCollector("p", "w")
    _fill(sampled, 8000)
    _fill(exact, 8000)
    assert sampled.commits_per_bucket(1.0) == exact.commits_per_bucket(1.0)


def test_merge_preserves_confirmed_counts_across_reservoirs():
    parts = []
    for seed in range(3):
        collector = StatsCollector("p", "w", reservoir=100, reservoir_seed=seed)
        _fill(collector, 2000)
        parts.append(collector)
    merged = merge_collectors(parts)
    assert merged.confirmed == 6000
    assert len(merged.latencies) == 300


def test_experiment_summary_counts_match_with_and_without_reservoir():
    """End to end: sampling may move percentiles slightly but must
    never change what happened — submitted/confirmed/rejected and the
    chain are invariants."""
    spec = ExperimentSpec(
        platform="hyperledger",
        workload="ycsb",
        n_servers=2,
        n_clients=2,
        request_rate_tx_s=100.0,
        duration_s=8.0,
        seed=5,
    )
    exact = run_experiment(spec)
    sampled = run_experiment(replace(spec, stats_reservoir=50))
    assert sampled.summary.submitted == exact.summary.submitted
    assert sampled.summary.confirmed == exact.summary.confirmed
    assert sampled.summary.rejected == exact.summary.rejected
    assert sampled.chain_height == exact.chain_height
    assert sampled.summary.latency_avg_s == pytest.approx(
        exact.summary.latency_avg_s, rel=0.25
    )


def test_large_enough_reservoir_reproduces_the_exact_summary():
    spec = ExperimentSpec(
        platform="hyperledger",
        workload="ycsb",
        n_servers=2,
        n_clients=2,
        request_rate_tx_s=60.0,
        duration_s=8.0,
        seed=5,
    )
    exact = run_experiment(spec)
    sampled = run_experiment(replace(spec, stats_reservoir=1_000_000))
    assert sampled.summary == exact.summary
