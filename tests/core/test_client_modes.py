"""Differential tests: coroutine clients vs the callback adapter path.

The API redesign's core guarantee is that rewriting the driver from
``on_reply`` callbacks to generator-coroutines changed *nothing
measured*: same seed, same platform, same knobs must produce
bit-identical statistics and the same chain, whichever client
implementation runs. These tests pin that equivalence on multiple
platforms and in every driver mode (polling, pub/sub, blocking).
"""

from dataclasses import replace

import pytest

from repro.core import Driver, DriverConfig, ExperimentSpec, run_experiment
from repro.errors import BenchmarkError
from repro.platforms import build_cluster
from repro.workloads import DoNothingWorkload


def _spec(platform: str, **overrides) -> ExperimentSpec:
    base = ExperimentSpec(
        platform=platform,
        workload="ycsb",
        n_servers=4,
        n_clients=2,
        request_rate_tx_s=80.0,
        duration_s=12.0,
        seed=9,
    )
    return replace(base, **overrides)


def _run_both(spec: ExperimentSpec):
    coroutine = run_experiment(replace(spec, client_mode="coroutine"))
    callback = run_experiment(replace(spec, client_mode="callback"))
    return coroutine, callback


@pytest.mark.parametrize("platform", ["hyperledger", "ethereum"])
def test_modes_bit_identical_summary_and_chain(platform):
    """Same seed => bit-identical StatsSummary + chain height, both modes."""
    coroutine, callback = _run_both(_spec(platform))
    assert coroutine.summary == callback.summary
    assert coroutine.chain_height == callback.chain_height
    assert coroutine.total_blocks == callback.total_blocks
    assert coroutine.queue_series == callback.queue_series
    assert coroutine.summary.confirmed > 0  # the runs measured something


def test_modes_identical_under_subscribe_feed():
    """The ErisDB pub/sub path: awaitable stream == legacy callback."""
    coroutine, callback = _run_both(_spec("erisdb", subscribe=True))
    assert coroutine.summary == callback.summary
    assert coroutine.chain_height == callback.chain_height
    assert coroutine.summary.confirmed > 0


def test_modes_identical_in_blocking_mode():
    coroutine, callback = _run_both(
        _spec("hyperledger", n_clients=1, request_rate_tx_s=500.0,
              duration_s=10.0, blocking=True)
    )
    assert coroutine.summary == callback.summary
    assert 0 < coroutine.summary.confirmed < 100  # still serialized


def test_modes_identical_under_rejection_retry_pressure():
    """Overloading Parity's intake throttle exercises the retry path."""
    coroutine, callback = _run_both(
        _spec("parity", n_servers=1, n_clients=1,
              request_rate_tx_s=300.0, duration_s=8.0)
    )
    assert coroutine.summary.rejected > 0  # the backoff path actually ran
    assert coroutine.summary == callback.summary


def test_coroutine_mode_is_self_deterministic():
    """Two coroutine runs with one seed replay the same timeline."""
    spec = _spec("hyperledger")
    first = run_experiment(spec)
    second = run_experiment(spec)
    assert first.summary == second.summary
    assert first.chain_height == second.chain_height


def test_driver_knobs_flow_from_spec_to_clients():
    spec = _spec(
        "hyperledger", poll_interval_s=0.2, threads_per_client=7,
        retry_interval_s=0.05,
    )
    cluster = build_cluster(spec.platform, spec.n_servers, seed=spec.seed)
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(
            n_clients=1,
            poll_interval_s=spec.poll_interval_s,
            threads_per_client=spec.threads_per_client,
            retry_interval_s=spec.retry_interval_s,
        ),
    )
    driver.prepare()
    assert driver.clients[0].config.threads_per_client == 7
    assert driver.clients[0].config.poll_interval_s == 0.2
    cluster.close()


def test_unknown_client_mode_is_rejected():
    with pytest.raises(BenchmarkError, match="client_mode"):
        DriverConfig(client_mode="threads")


@pytest.mark.parametrize(
    "bad_knobs",
    [
        {"poll_interval_s": 0.0},  # polling at the same instant forever
        {"poll_interval_s": -1.0},
        {"threads_per_client": 0},  # nothing could ever submit
        {"retry_interval_s": -0.1},  # invalid timer
        {"request_rate_tx_s": 0.0},
    ],
)
def test_driver_config_rejects_degenerate_knobs(bad_knobs):
    """Knob values reachable from the CLI / scenario JSON that would
    hang or starve a run must fail at construction, not mid-suite."""
    with pytest.raises(BenchmarkError):
        DriverConfig(**bad_knobs)
