"""Property-based tests for StatsCollector's derived metrics.

Every figure in the paper passes through this class, so its percentile,
CDF, bucketing, and merge logic must be correct on arbitrary inputs —
including the degenerate ones (empty runs, ties, single samples).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import StatsCollector, merge_collectors

latency_lists = st.lists(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    max_size=200,
)


def collector_with(latencies, start=0.0, end=60.0) -> StatsCollector:
    collector = StatsCollector("test", "test")
    collector.begin(start)
    for latency in latencies:
        # Submit at t=0 so the stored latency equals the input exactly
        # (no floating-point cancellation in confirmed_at - submitted_at).
        collector.record_confirmation(0.0, latency)
    collector.finish(end)
    return collector


@settings(max_examples=200, deadline=None)
@given(latencies=latency_lists, pct=st.floats(min_value=1.0, max_value=100.0))
def test_percentile_is_an_order_statistic(latencies, pct):
    collector = collector_with(latencies)
    value = collector.latency_percentile(pct)
    if not latencies:
        assert value == 0.0
        return
    ordered = sorted(latencies)
    assert value in ordered
    # Nearest-rank definition: at least pct% of samples are <= value.
    rank = sum(1 for lat in ordered if lat <= value)
    assert rank >= math.ceil(pct / 100 * len(ordered))


@settings(max_examples=100, deadline=None)
@given(latencies=latency_lists)
def test_percentiles_are_monotone_in_pct(latencies):
    collector = collector_with(latencies)
    p50 = collector.latency_percentile(50)
    p95 = collector.latency_percentile(95)
    p99 = collector.latency_percentile(99)
    assert p50 <= p95 <= p99


@settings(max_examples=100, deadline=None)
@given(latencies=latency_lists)
def test_cdf_is_monotone_and_reaches_one(latencies):
    collector = collector_with(latencies)
    cdf = collector.latency_cdf()
    if not latencies:
        assert cdf == []
        return
    xs = [x for x, _ in cdf]
    ys = [y for _, y in cdf]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == 1.0
    assert max(xs) == max(latencies)


@settings(max_examples=100, deadline=None)
@given(
    confirm_times=st.lists(
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
        min_size=1,
        max_size=150,
    ),
    bucket=st.floats(min_value=0.5, max_value=10.0),
)
def test_commit_buckets_partition_all_commits(confirm_times, bucket):
    collector = StatsCollector()
    collector.begin(0.0)
    for t in confirm_times:
        collector.record_confirmation(0.0, t)
    collector.finish(max(confirm_times))
    buckets = collector.commits_per_bucket(bucket)
    assert sum(count for _, count in buckets) == len(confirm_times)
    times = [t for t, _ in buckets]
    assert times == sorted(times)


@settings(max_examples=100, deadline=None)
@given(groups=st.lists(latency_lists, min_size=1, max_size=5))
def test_merge_preserves_totals_and_extremes(groups):
    collectors = [collector_with(latencies) for latencies in groups]
    for i, collector in enumerate(collectors):
        collector.submitted = len(groups[i])
        collector.rejected = i
    merged = merge_collectors(collectors)
    all_latencies = [lat for group in groups for lat in group]
    assert merged.confirmed == len(all_latencies)
    assert merged.submitted == sum(len(g) for g in groups)
    assert merged.rejected == sum(range(len(groups)))
    if all_latencies:
        assert math.isclose(
            merged.latency_avg(), sum(all_latencies) / len(all_latencies)
        )
        assert merged.latency_percentile(100) == max(all_latencies)


@settings(max_examples=50, deadline=None)
@given(latencies=latency_lists)
def test_merge_single_is_identity_on_metrics(latencies):
    collector = collector_with(latencies)
    merged = merge_collectors([collector])
    assert merged.confirmed == collector.confirmed
    assert merged.latency_avg() == collector.latency_avg()
    assert merged.throughput() == collector.throughput()
