"""Tests for pruning stale run files from a suite store (PR 5).

``blockbench suite FILE --gc --out-dir DIR`` removes run files whose
spec hashes are no longer in the scenario file's grid — the lifecycle
step that keeps a long-lived result store aligned with a grid that
changed shape.
"""

import json

from repro.cli import main
from repro.core import ScenarioSpec, ScenarioSuite, SuiteStore, spec_hash
from repro.core.suitestore import RUN_SCHEMA


def _suite(rates):
    return ScenarioSuite(
        name="gc-grid",
        scenarios=[
            ScenarioSpec(
                platforms="hyperledger", workloads="donothing",
                servers=2, clients=2, rates=rates, durations=3, seeds=1,
            )
        ],
    )


def _scenario_file(tmp_path, rates):
    path = tmp_path / f"scenario-{'-'.join(map(str, rates))}.json"
    path.write_text(json.dumps({
        "name": "gc-grid",
        "scenarios": [{
            "name": "gc-grid",
            "platforms": "hyperledger",
            "workloads": "donothing",
            "servers": 2,
            "clients": 2,
            "rates": rates,
            "durations": 3,
            "seeds": 1,
        }],
    }))
    return path


def test_store_gc_removes_only_stale_hashes(tmp_path):
    store_dir = tmp_path / "store"
    _suite([20, 40]).run(out_dir=store_dir)
    store = SuiteStore(store_dir)
    live = {spec_hash(spec) for spec in _suite([20]).expand()}
    stale = {spec_hash(spec) for spec in _suite([40]).expand()}
    removed = store.gc(live)
    assert {path.stem for path in removed} == stale
    remaining = {p.stem for p in (store_dir / "runs").glob("*.json")}
    assert remaining == live


def test_store_gc_ignores_foreign_files(tmp_path):
    store_dir = tmp_path / "store"
    _suite([20]).run(out_dir=store_dir)
    # Not a run file the store wrote: must survive gc untouched.
    foreign = store_dir / "runs" / "notes.json"
    foreign.write_text(json.dumps({"schema": "something-else"}))
    broken = store_dir / "runs" / "broken.json"
    broken.write_text("{truncated")
    removed = SuiteStore(store_dir).gc(keep_hashes=set())
    assert foreign.exists() and broken.exists()
    assert all(p.stem not in ("notes", "broken") for p in removed)
    assert len(removed) == 1  # the one real (now stale) run file


def test_store_gc_keeps_valid_run_files_in_keep_set(tmp_path):
    store_dir = tmp_path / "store"
    result = _suite([20]).run(out_dir=store_dir)
    keep = {spec_hash(r.spec) for r in result.results}
    assert SuiteStore(store_dir).gc(keep) == []


def test_cli_gc_prunes_after_grid_change(tmp_path, capsys):
    store_dir = tmp_path / "store"
    wide = _scenario_file(tmp_path, [20, 40])
    assert main(["suite", str(wide), "--out-dir", str(store_dir)]) == 0
    assert len(list((store_dir / "runs").glob("*.json"))) == 2
    narrow = _scenario_file(tmp_path, [20])
    capsys.readouterr()
    assert main([
        "suite", str(narrow), "--gc", "--out-dir", str(store_dir), "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kept"] == 1
    assert len(payload["removed"]) == 1
    survivors = list((store_dir / "runs").glob("*.json"))
    assert len(survivors) == 1
    data = json.loads(survivors[0].read_text())
    assert data["schema"] == RUN_SCHEMA
    assert data["spec"]["request_rate_tx_s"] == 20.0
    # The pruned store still resumes cleanly: only the removed point
    # re-runs.
    assert main([
        "suite", str(wide), "--out-dir", str(store_dir), "--resume",
    ]) == 0
    assert len(list((store_dir / "runs").glob("*.json"))) == 2


def test_cli_gc_rejects_nonexistent_store(tmp_path, capsys):
    """A typo'd --out-dir must error, not be silently created empty
    and reported clean."""
    scenario = _scenario_file(tmp_path, [20])
    missing = tmp_path / "no-such-store"
    assert main([
        "suite", str(scenario), "--gc", "--out-dir", str(missing),
    ]) == 2
    assert "not a suite result directory" in capsys.readouterr().err
    assert not missing.exists()


def test_cli_gc_requires_out_dir(tmp_path, capsys):
    scenario = _scenario_file(tmp_path, [20])
    assert main(["suite", str(scenario), "--gc"]) == 2
    assert "--gc requires --out-dir" in capsys.readouterr().err


def test_cli_gc_conflicts_with_compare(tmp_path, capsys):
    assert main([
        "suite", "--compare", str(tmp_path / "a"), str(tmp_path / "b"),
        "--gc",
    ]) == 2
    assert "--gc" in capsys.readouterr().err


def test_cli_gc_rejects_run_mode_flags(tmp_path, capsys):
    scenario = _scenario_file(tmp_path, [20])
    store = tmp_path / "store"
    _suite([20]).run(out_dir=store)
    assert main([
        "suite", str(scenario), "--gc", "--out-dir", str(store), "--resume",
    ]) == 2
    assert "--resume" in capsys.readouterr().err
    # The store is untouched by the rejected invocation.
    assert len(list((store / "runs").glob("*.json"))) == 1
