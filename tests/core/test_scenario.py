"""Scenario-engine tests: grid expansion, suite execution, merging."""

import json

import pytest

from repro.core import (
    ExperimentSpec,
    ScenarioSpec,
    ScenarioSuite,
    SuiteResult,
    build_fault_schedule,
)
from repro.core.faults import FaultSchedule
from repro.errors import BenchmarkError


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
def test_expand_takes_cartesian_product():
    spec = ScenarioSpec(
        name="grid",
        platforms=["hyperledger", "parity"],
        workloads=["ycsb", "donothing"],
        servers=[4, 8],
        clients=[2],
        rates=[10, 20, 30],
        durations=[5],
        seeds=[1, 2],
    )
    specs = spec.expand()
    assert len(specs) == 2 * 2 * 2 * 3 * 2
    assert all(isinstance(s, ExperimentSpec) for s in specs)
    assert all(s.scenario == "grid" for s in specs)
    # Every grid point is distinct.
    points = {
        (s.platform, s.workload, s.n_servers, s.request_rate_tx_s, s.seed)
        for s in specs
    }
    assert len(points) == len(specs)


def test_scalar_axes_are_one_point_axes():
    spec = ScenarioSpec(
        platforms="hyperledger", workloads="ycsb", servers=4,
        clients=2, rates=50.0, durations=5, seeds=3,
    )
    specs = spec.expand()
    assert len(specs) == 1
    only = specs[0]
    assert only.platform == "hyperledger"
    assert only.n_servers == 4
    assert only.n_clients == 2
    assert only.request_rate_tx_s == 50.0
    assert only.seed == 3


def test_clients_none_matches_servers_pointwise():
    spec = ScenarioSpec(servers=[4, 8, 16], clients=None, rates=10)
    by_servers = {s.n_servers: s.n_clients for s in spec.expand()}
    assert by_servers == {4: 4, 8: 8, 16: 16}


def test_seed_axis_produces_one_run_per_seed():
    spec = ScenarioSpec(servers=4, rates=10, seeds=[1, 2, 3])
    assert sorted(s.seed for s in spec.expand()) == [1, 2, 3]


def test_config_axis_carries_labels():
    spec = ScenarioSpec(
        platforms="hyperledger", servers=4, rates=10,
        configs=[("knob-a", None), ("knob-b", None)],
    )
    labels = [s.label for s in spec.expand()]
    assert labels == ["knob-a", "knob-b"]


def test_overrides_axis_expands_with_labels():
    spec = ScenarioSpec(
        platforms="hyperledger", servers=4, rates=10,
        overrides=[
            {"pbft": {"batch_size": 100}},
            {"pbft": {"batch_size": 500}, "inbox_capacity": 1300},
        ],
    )
    specs = spec.expand()
    assert len(specs) == 2
    assert specs[0].config_overrides == {"pbft": {"batch_size": 100}}
    assert specs[0].label == "pbft.batch_size=100"
    # Multi-knob labels flatten in sorted key order.
    assert specs[1].label == "inbox_capacity=1300,pbft.batch_size=500"


def test_single_overrides_dict_applies_without_label():
    spec = ScenarioSpec(
        platforms="hyperledger", servers=4, rates=[10, 20],
        overrides={"pbft": {"batch_size": 250}},
    )
    specs = spec.expand()
    assert len(specs) == 2
    assert all(s.config_overrides == {"pbft": {"batch_size": 250}} for s in specs)
    # A campaign-wide dict is not an axis: no label noise on every row.
    assert all(s.label == "" for s in specs)


def test_overrides_accepted_from_json():
    spec = ScenarioSpec.from_dict(
        {
            "name": "batch-sweep",
            "platforms": "hyperledger",
            "servers": 4,
            "rates": 10,
            "overrides": [
                {"pbft": {"batch_size": 100}},
                {"pbft": {"batch_size": 1000}},
            ],
        }
    )
    assert len(spec.expand()) == 2


def test_overrides_axis_rejects_bad_points():
    with pytest.raises(BenchmarkError, match="axis 'overrides' is empty"):
        ScenarioSpec(overrides=[]).expand()
    with pytest.raises(BenchmarkError, match="must be an object"):
        ScenarioSpec(overrides=["batch_size=100"]).expand()


def test_overrides_combine_with_configs_axis_labels():
    spec = ScenarioSpec(
        platforms="hyperledger", servers=4, rates=10,
        configs=[("base", None)],
        overrides=[{"inbox_capacity": 650}, {"inbox_capacity": 1300}],
    )
    labels = [s.label for s in spec.expand()]
    assert labels == ["base,inbox_capacity=650", "base,inbox_capacity=1300"]


def test_fault_dict_expands_to_fresh_schedule_per_point():
    spec = ScenarioSpec(
        servers=4, rates=10, seeds=[1, 2],
        faults={"crashes": [{"at_time": 5.0, "count": 1}]},
    )
    specs = spec.expand()
    assert all(isinstance(s.faults, FaultSchedule) for s in specs)
    assert specs[0].faults is not specs[1].faults
    assert specs[0].faults.crashes[0].at_time == 5.0


def test_driver_knob_axes_expand_and_flow_into_specs():
    spec = ScenarioSpec(
        platforms="hyperledger", servers=4, rates=10,
        poll_intervals=[0.25, 0.5],
        threads_per_client=[8, 32],
        retry_intervals=0.1,
    )
    specs = spec.expand()
    assert len(specs) == 4
    points = {(s.poll_interval_s, s.threads_per_client) for s in specs}
    assert points == {(0.25, 8), (0.25, 32), (0.5, 8), (0.5, 32)}
    assert all(s.retry_interval_s == 0.1 for s in specs)
    assert all(s.client_mode == "coroutine" for s in specs)


def test_driver_knob_axes_accepted_from_json():
    spec = ScenarioSpec.from_dict(
        {
            "name": "poll-sweep",
            "platforms": "hyperledger",
            "servers": 4,
            "rates": 10,
            "poll_intervals": [0.1, 1.0],
            "threads_per_client": 16,
            "retry_intervals": [0.05, 0.25],
            "client_mode": "callback",
        }
    )
    specs = spec.expand()
    assert len(specs) == 4
    assert all(s.threads_per_client == 16 for s in specs)
    assert all(s.client_mode == "callback" for s in specs)


def test_unknown_client_mode_rejected_at_expand():
    with pytest.raises(BenchmarkError, match="unknown client_mode"):
        ScenarioSpec(client_mode="corotine").expand()


def test_unknown_platform_rejected_at_expand():
    with pytest.raises(BenchmarkError, match="unknown platform 'nosuchchain'"):
        ScenarioSpec(platforms="nosuchchain").expand()


def test_unknown_workload_rejected_at_expand():
    with pytest.raises(BenchmarkError, match="unknown workload 'nosuchwork'"):
        ScenarioSpec(workloads="nosuchwork").expand()


def test_empty_axis_rejected():
    with pytest.raises(BenchmarkError, match="axis 'rates' is empty"):
        ScenarioSpec(rates=[]).expand()


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(BenchmarkError, match="unknown scenario keys"):
        ScenarioSpec.from_dict({"platfroms": ["hyperledger"]})


def test_from_dict_rejects_python_only_configs_axis():
    with pytest.raises(BenchmarkError, match="only available from the Python API"):
        ScenarioSpec.from_dict({"configs": [["knob", {"batch_size": 100}]]})


def test_build_fault_schedule_rejects_unknown_kinds():
    with pytest.raises(BenchmarkError, match="unknown fault kinds"):
        build_fault_schedule({"meteors": []})
    with pytest.raises(BenchmarkError, match="bad crashes entry"):
        build_fault_schedule({"crashes": [{"at": 1}]})


# ----------------------------------------------------------------------
# Suite loading
# ----------------------------------------------------------------------
def test_suite_from_file_single_scenario_object(tmp_path):
    path = tmp_path / "solo.json"
    path.write_text(json.dumps({"name": "solo", "servers": 4, "rates": 10}))
    suite = ScenarioSuite.from_file(path)
    assert suite.name == "solo"
    assert len(suite.scenarios) == 1
    assert len(suite.expand()) == 1


def test_suite_from_file_defaults_name_to_stem(tmp_path):
    path = tmp_path / "mysweep.json"
    path.write_text(json.dumps({"scenarios": [{"servers": 4, "rates": 10}]}))
    assert ScenarioSuite.from_file(path).name == "mysweep"
    # A bare scenario object without a name also falls back to the stem.
    bare = tmp_path / "baresweep.json"
    bare.write_text(json.dumps({"servers": 4, "rates": 10}))
    assert ScenarioSuite.from_file(bare).name == "baresweep"


def test_suite_from_file_missing_and_invalid(tmp_path):
    with pytest.raises(BenchmarkError, match="not found"):
        ScenarioSuite.from_file(tmp_path / "nope.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(BenchmarkError, match="invalid JSON"):
        ScenarioSuite.from_file(bad)
    arr = tmp_path / "arr.json"
    arr.write_text("[1, 2]")
    with pytest.raises(BenchmarkError, match="expected a JSON object"):
        ScenarioSuite.from_file(arr)


def test_suite_from_dict_rejects_empty_and_extra_keys():
    with pytest.raises(BenchmarkError, match="no scenarios"):
        ScenarioSuite.from_dict({"scenarios": []})
    with pytest.raises(BenchmarkError, match="unknown suite keys"):
        ScenarioSuite.from_dict({"scenarios": [{}], "bogus": 1})


# ----------------------------------------------------------------------
# End-to-end suite runs (small grids to keep CI fast)
# ----------------------------------------------------------------------
def _small_suite() -> ScenarioSuite:
    return ScenarioSuite(
        name="e2e",
        scenarios=[
            ScenarioSpec(
                name="two-platforms",
                platforms=["hyperledger", "erisdb"],
                workloads="ycsb",
                servers=4,
                clients=2,
                rates=[20, 40],
                durations=5,
                seeds=1,
            )
        ],
    )


def test_suite_run_end_to_end_two_platforms():
    result = _small_suite().run()
    assert isinstance(result, SuiteResult)
    assert len(result.results) == 4
    assert {r.spec.platform for r in result.results} == {"hyperledger", "erisdb"}
    assert all(r.summary.confirmed > 0 for r in result.results)
    # lookup()/one() resolve grid points by axis value.
    hlf40 = result.one(platform="hyperledger", rate=40.0)
    assert hlf40.spec.request_rate_tx_s == 40.0
    assert len(result.lookup(platform="erisdb")) == 2
    assert result.peak(platform="hyperledger").throughput >= hlf40.throughput
    with pytest.raises(BenchmarkError, match="expected exactly one"):
        result.one(platform="hyperledger")
    with pytest.raises(BenchmarkError, match="unknown lookup axis"):
        result.lookup(warp_factor=9)
    with pytest.raises(BenchmarkError, match="no results match"):
        result.peak(platform="parity")


def test_suite_run_multiprocessing_matches_grid_order():
    suite = ScenarioSuite(
        name="mp",
        scenarios=[
            ScenarioSpec(
                platforms="hyperledger", workloads="donothing",
                servers=4, clients=2, rates=[20, 40], durations=3, seeds=1,
            )
        ],
    )
    # plugin_modules reach every worker's initializer (spawn-safety for
    # third-party registrations; json is a stand-in importable module).
    result = suite.run(processes=2, plugin_modules=["json"])
    assert [r.spec.request_rate_tx_s for r in result.results] == [20.0, 40.0]
    assert all(r.summary.confirmed > 0 for r in result.results)


def test_suite_result_format_export_and_json(tmp_path):
    result = _small_suite().run()
    table = result.format()
    assert "hyperledger" in table and "erisdb" in table
    assert "suite e2e: 4 runs" in table

    payload = result.to_json()
    assert payload["suite"] == "e2e"
    assert payload["runs"] == 4
    assert all(run["throughput_tx_s"] > 0 for run in payload["results"])

    paths = result.export(tmp_path)
    assert {p.name for p in paths} == {"grid.csv", "summary.csv"}
    grid_lines = (tmp_path / "grid.csv").read_text().splitlines()
    assert grid_lines[0].startswith("scenario,")
    assert len(grid_lines) == 5
    summary_lines = (tmp_path / "summary.csv").read_text().splitlines()
    assert len(summary_lines) == 5


def test_progress_callback_fires_per_run():
    seen = []
    suite = ScenarioSuite(
        name="progress",
        scenarios=[
            ScenarioSpec(
                platforms="hyperledger", workloads="donothing",
                servers=4, clients=2, rates=[20, 40], durations=3, seeds=1,
            )
        ],
    )
    suite.run(progress=lambda i, n, spec: seen.append((i, n, spec.platform)))
    assert seen == [(0, 2, "hyperledger"), (1, 2, "hyperledger")]


def test_arrival_axis_expands_with_labels():
    spec = ScenarioSpec(
        name="openloop",
        platforms="hyperledger",
        workloads="ycsb",
        servers=4,
        rates=1,
        durations=5,
        arrival=[
            {"process": "poisson", "rate": 500.0},
            {"process": "poisson", "rate": 1000.0, "zipf_s": 1.1},
        ],
    )
    specs = spec.expand()
    assert len(specs) == 2
    assert specs[0].arrival == {"process": "poisson", "rate": 500.0}
    assert specs[1].arrival["rate"] == 1000.0
    # Axis points of a multi-point arrival axis are labelled apart.
    assert specs[0].label != specs[1].label


def test_single_arrival_dict_applies_without_label():
    spec = ScenarioSpec(
        name="openloop",
        platforms="hyperledger",
        workloads="ycsb",
        servers=4,
        rates=1,
        durations=5,
        arrival={"process": "uniform", "rate": 200.0},
        stats_reservoir=5000,
    )
    specs = spec.expand()
    assert len(specs) == 1
    assert specs[0].arrival == {"process": "uniform", "rate": 200.0}
    assert specs[0].stats_reservoir == 5000
    assert specs[0].label == ""


def test_arrival_axis_rejects_bad_points_eagerly():
    spec = ScenarioSpec(
        name="openloop",
        platforms="hyperledger",
        workloads="ycsb",
        servers=4,
        rates=1,
        durations=5,
        arrival=[{"process": "poisson", "rate": -5.0}],
    )
    with pytest.raises(BenchmarkError):
        spec.expand()


def test_arrival_accepted_from_json():
    suite = ScenarioSuite.from_dict(
        {
            "name": "openloop",
            "platforms": ["hyperledger"],
            "workloads": ["ycsb"],
            "servers": [4],
            "rates": [1],
            "durations": [5],
            "arrival": {"process": "poisson", "rate": 400.0,
                        "accounts": 1000, "zipf_s": 1.1},
            "stats_reservoir": 2000,
        }
    )
    specs = suite.expand()
    assert len(specs) == 1
    assert specs[0].arrival["accounts"] == 1000
    assert specs[0].stats_reservoir == 2000
