"""Comparison-engine tests: aligning and gating two result stores."""

import json

import pytest

from repro.core import ScenarioSpec, ScenarioSuite, compare_suites
from repro.errors import BenchmarkError


def _run_store(tmp_path, name, rates=(20, 40)):
    out = tmp_path / name
    ScenarioSuite(
        name="cmp",
        scenarios=[
            ScenarioSpec(
                platforms="hyperledger", workloads="donothing",
                servers=2, clients=2, rates=list(rates), durations=3, seeds=1,
            )
        ],
    ).run(out_dir=out)
    return out


def _doctor(store_dir, scale_throughput=1.0, scale_latency=1.0, index=0):
    """Rewrite one run file's summary to fake a perf change."""
    path = sorted((store_dir / "runs").glob("*.json"))[index]
    data = json.loads(path.read_text())
    data["summary"]["throughput_tx_s"] *= scale_throughput
    data["summary"]["latency_avg_s"] *= scale_latency
    path.write_text(json.dumps(data))
    return path


def test_identical_stores_compare_clean(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    comparison = compare_suites(base, current, threshold=0.0)
    assert len(comparison.deltas) == 2
    assert comparison.regressions() == []
    assert comparison.only_in_base == comparison.only_in_current == []
    for delta in comparison.deltas:
        assert delta.throughput_ratio == 1.0
        assert delta.latency_ratio == 1.0


def test_throughput_drop_beyond_threshold_regresses(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    _doctor(current, scale_throughput=0.8)
    comparison = compare_suites(base, current, threshold=0.1)
    regressions = comparison.regressions()
    assert len(regressions) == 1
    assert "throughput" in regressions[0].failures[0]
    # A drop inside the tolerance passes.
    assert compare_suites(base, current, threshold=0.25).regressions() == []


def test_latency_rise_beyond_threshold_regresses(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    _doctor(current, scale_latency=1.5)
    regressions = compare_suites(base, current, threshold=0.1).regressions()
    assert len(regressions) == 1
    assert "latency" in regressions[0].failures[0]


def test_improvements_never_regress(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    _doctor(current, scale_throughput=2.0, scale_latency=0.5)
    comparison = compare_suites(base, current, threshold=0.0)
    assert comparison.regressions() == []
    assert max(d.throughput_ratio for d in comparison.deltas) == 2.0


def test_partial_overlap_reports_drift(tmp_path):
    base = _run_store(tmp_path, "base", rates=(20, 40))
    current = _run_store(tmp_path, "current", rates=(40, 80))
    comparison = compare_suites(base, current)
    assert len(comparison.deltas) == 1  # rate=40 is the shared point
    assert len(comparison.only_in_base) == 1
    assert len(comparison.only_in_current) == 1
    assert "only in base" in comparison.format()


def test_disjoint_stores_error(tmp_path):
    base = _run_store(tmp_path, "base", rates=(20,))
    current = _run_store(tmp_path, "current", rates=(80,))
    with pytest.raises(BenchmarkError, match="no grid points in common"):
        compare_suites(base, current)


def test_missing_directory_errors(tmp_path):
    base = _run_store(tmp_path, "base")
    with pytest.raises(BenchmarkError, match="not a suite result directory"):
        compare_suites(base, tmp_path / "nope")


def test_negative_threshold_rejected(tmp_path):
    base = _run_store(tmp_path, "base")
    with pytest.raises(BenchmarkError, match="non-negative"):
        compare_suites(base, base, threshold=-0.1)


def test_json_payload_shape(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    _doctor(current, scale_throughput=0.5)
    payload = compare_suites(base, current, threshold=0.1).to_json()
    assert payload["schema"] == "blockbench-suite-compare/1"
    assert payload["compared"] == 2
    assert payload["regressed"] == 1
    regressed = [r for r in payload["results"] if r["regressed"]]
    assert len(regressed) == 1
    assert regressed[0]["throughput_ratio"] == 0.5
    assert regressed[0]["failures"]
    assert json.dumps(payload)  # fully serializable


def test_zero_base_point_is_visible_but_not_gating(tmp_path):
    """Work appearing from a zero base: never a regression, ratios are
    JSON-null (Infinity is not valid JSON), and the human table notes it."""
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    _doctor(base, scale_throughput=0.0, scale_latency=0.0)
    comparison = compare_suites(base, current, threshold=0.0)
    assert comparison.regressions() == []
    assert len(comparison.appeared_from_zero()) == 1
    payload = comparison.to_json()
    text = json.dumps(payload)
    assert "Infinity" not in text
    json.loads(text)  # strict-parseable
    nulled = [r for r in payload["results"] if r["throughput_ratio"] is None]
    assert len(nulled) == 1 and nulled[0]["latency_ratio"] is None
    assert "appeared from a zero base" in comparison.format()


def test_format_marks_regressions(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    _doctor(current, scale_throughput=0.5)
    text = compare_suites(base, current, threshold=0.1).format()
    assert "REGRESSED" in text
    assert "REGRESSION" in text  # the per-point note line
    assert "hyperledger/donothing" in text


# ---------------------------------------------------------------------------
# Cross-scenario-file projection (PR 6)
# ---------------------------------------------------------------------------
def _named_store(tmp_path, dirname, scenario_name, rates=(20, 40)):
    out = tmp_path / dirname
    ScenarioSuite(
        name=scenario_name,
        scenarios=[
            ScenarioSpec(
                platforms="hyperledger", workloads="donothing",
                servers=2, clients=2, rates=list(rates), durations=3, seeds=1,
                name=scenario_name,
            )
        ],
    ).run(out_dir=out)
    return out


def test_same_axes_different_scenario_names_align_by_projection(tmp_path):
    """Two scenario files sweeping identical physical axes never share
    a direct spec hash (the name is hashed); the projected alignment
    must recover the point-by-point diff and flag itself."""
    base = _named_store(tmp_path, "base", "alpha")
    current = _named_store(tmp_path, "current", "beta")
    comparison = compare_suites(base, current, threshold=0.0)
    assert comparison.projected is True
    assert len(comparison.deltas) == 2
    assert comparison.regressions() == []
    assert comparison.to_json()["projected"] is True
    assert "projected spec hash" in comparison.format()


def test_direct_alignment_never_reports_projected(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    comparison = compare_suites(base, current)
    assert comparison.projected is False
    assert comparison.to_json()["projected"] is False
    assert "projected spec hash" not in comparison.format()


def test_projection_still_gates_regressions(tmp_path):
    base = _named_store(tmp_path, "base", "alpha")
    current = _named_store(tmp_path, "current", "beta")
    _doctor(current, scale_throughput=0.5)
    comparison = compare_suites(base, current, threshold=0.1)
    assert comparison.projected is True
    assert len(comparison.regressions()) == 1


def test_projection_with_disjoint_physical_axes_errors(tmp_path):
    base = _named_store(tmp_path, "base", "alpha", rates=(20,))
    current = _named_store(tmp_path, "current", "beta", rates=(80,))
    with pytest.raises(BenchmarkError, match="disjoint axes"):
        compare_suites(base, current)


def test_projection_collision_is_rejected(tmp_path):
    """Two runs on one side that differ only in scenario/label project
    to the same key; aligning either would be arbitrary, so refuse."""
    base = _named_store(tmp_path, "base", "alpha", rates=(20,))
    extra = _named_store(tmp_path, "extra", "gamma", rates=(20,))
    # Splice gamma's run file into base's store: same physical point,
    # different scenario name.
    src = next((extra / "runs").glob("*.json"))
    (base / "runs" / src.name).write_text(src.read_text())
    current = _named_store(tmp_path, "current", "beta", rates=(20,))
    with pytest.raises(BenchmarkError, match="ambiguous"):
        compare_suites(base, current)


# ---------------------------------------------------------------------------
# Stage attribution: a regression names the lifecycle stage that moved
# ---------------------------------------------------------------------------
def _doctor_stage(store_dir, stage, extra_s, index=0):
    """Inflate one stage's mean and the end-to-end latency to match —
    the run-file shape of a slowdown localized to that stage."""
    path = sorted((store_dir / "runs").glob("*.json"))[index]
    data = json.loads(path.read_text())
    data["summary"]["latency_avg_s"] += extra_s
    breakdown = data["summary"]["stage_breakdown"]
    breakdown["end_to_end_avg_s"] += extra_s
    for stat in breakdown["stages"]:
        if stat["stage"] == stage:
            stat["avg_s"] += extra_s
    path.write_text(json.dumps(data))
    return path


def test_latency_regression_is_attributed_to_the_moved_stage(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    _doctor_stage(current, "consensus", 5.0)
    comparison = compare_suites(base, current, threshold=0.1)
    regressions = comparison.regressions()
    assert len(regressions) == 1
    delta = regressions[0]
    assert delta.regressed_stage == "consensus"
    assert delta.stage_deltas["consensus"] == pytest.approx(5.0)
    # The attribution is visible in both renderings.
    assert any(
        "stage attribution: 'consensus'" in failure
        for failure in delta.failures
    )
    assert "stage attribution: 'consensus'" in comparison.format()
    payload = comparison.to_json()
    regressed = [r for r in payload["results"] if r["regressed"]]
    assert regressed[0]["regressed_stage"] == "consensus"
    assert regressed[0]["stage_deltas"]["consensus"] == pytest.approx(5.0)


def test_clean_compare_reports_stage_deltas_without_attribution(tmp_path):
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    comparison = compare_suites(base, current, threshold=0.1)
    assert comparison.regressions() == []
    for delta in comparison.deltas:
        assert delta.stage_deltas is not None
        assert all(moved == 0.0 for moved in delta.stage_deltas.values())
        assert "stage attribution" not in "".join(delta.failures)


def test_runs_without_breakdowns_compare_without_attribution(tmp_path):
    """Stores written with trace_stages off still compare cleanly."""
    base = _run_store(tmp_path, "base")
    current = _run_store(tmp_path, "current")
    for store in (base, current):
        for path in (store / "runs").glob("*.json"):
            data = json.loads(path.read_text())
            data["summary"].pop("stage_breakdown", None)
            path.write_text(json.dumps(data))
    _doctor(current, scale_latency=3.0)
    comparison = compare_suites(base, current, threshold=0.1)
    regressions = comparison.regressions()
    assert len(regressions) == 1
    assert regressions[0].regressed_stage is None
    assert regressions[0].stage_deltas is None
    assert "stage attribution" not in "".join(regressions[0].failures)
