"""CSV export tests (plot-ready series for the paper's figures)."""

import csv

from repro.core import (
    StatsCollector,
    export_commit_series,
    export_latency_cdf,
    export_queue_series,
    export_summary,
    write_csv,
)


def _collector() -> StatsCollector:
    stats = StatsCollector("hyperledger", "ycsb")
    stats.begin(0.0)
    for i in range(10):
        stats.record_submission()
        stats.record_confirmation(float(i), float(i) + 0.5 + 0.05 * i)
        stats.record_queue_length(float(i), 10 - i)
    stats.finish(10.0)
    return stats


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def test_write_csv_creates_parents(tmp_path):
    target = tmp_path / "nested" / "dir" / "out.csv"
    written = write_csv(target, ["a", "b"], [[1, 2], [3, 4]])
    assert written == target
    assert _read(target) == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_export_summary_one_row_per_run(tmp_path):
    stats = _collector()
    path = export_summary(tmp_path / "summary.csv", [stats.summary()])
    rows = _read(path)
    assert rows[0][0] == "platform"
    assert len(rows) == 2
    record = dict(zip(rows[0], rows[1]))
    assert record["platform"] == "hyperledger"
    assert record["workload"] == "ycsb"
    assert int(record["confirmed"]) == 10
    assert float(record["throughput_tx_s"]) > 0


def test_export_queue_series_matches_samples(tmp_path):
    stats = _collector()
    path = export_queue_series(tmp_path / "queue.csv", stats)
    rows = _read(path)
    assert rows[0] == ["time_s", "queue_length"]
    assert len(rows) == 1 + len(stats.queue_samples)
    assert [float(rows[1][0]), int(rows[1][1])] == [0.0, 10]


def test_export_latency_cdf_reaches_one(tmp_path):
    stats = _collector()
    path = export_latency_cdf(tmp_path / "cdf.csv", stats, points=10)
    rows = _read(path)
    assert rows[0] == ["latency_s", "cumulative_fraction"]
    fractions = [float(r[1]) for r in rows[1:]]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0


def test_export_commit_series_buckets_all_commits(tmp_path):
    stats = _collector()
    path = export_commit_series(tmp_path / "commits.csv", stats, bucket_s=2.0)
    rows = _read(path)
    assert rows[0] == ["bucket_start_s", "commits"]
    assert sum(int(r[1]) for r in rows[1:]) == 10


def test_export_empty_collector_safe(tmp_path):
    stats = StatsCollector("parity", "ycsb")
    stats.begin(0.0)
    stats.finish(1.0)
    assert _read(export_queue_series(tmp_path / "q.csv", stats)) == [
        ["time_s", "queue_length"]
    ]
    assert _read(export_commit_series(tmp_path / "c.csv", stats)) == [
        ["bucket_start_s", "commits"]
    ]
