"""Tests for fault injection and the partition-attack security metric."""

import pytest

from repro.core import (
    CorruptionFault,
    CrashFault,
    DelayFault,
    Driver,
    DriverConfig,
    FaultSchedule,
    PartitionFault,
    run_partition_attack,
)
from repro.platforms import build_cluster
from repro.workloads import DoNothingWorkload


def test_crash_fault_fires_at_time():
    cluster = build_cluster("hyperledger", 4, seed=11)
    schedule = FaultSchedule(crashes=[CrashFault(at_time=5.0, count=1)])
    schedule.arm(cluster)
    cluster.run_until(4.9)
    assert len(cluster.alive_nodes()) == 4
    cluster.run_until(5.1)
    assert len(cluster.alive_nodes()) == 3
    assert len(schedule.crashed_node_ids) == 1
    cluster.close()


def test_delay_fault_window():
    cluster = build_cluster("ethereum", 2, seed=11)
    schedule = FaultSchedule(delays=[DelayFault(2.0, 4.0, extra_s=0.5)])
    schedule.arm(cluster)
    cluster.run_until(3.0)
    assert cluster.network.active_delay_extra("server-0", "server-1") == 0.5
    cluster.run_until(5.0)
    assert cluster.network.active_delay_extra("server-0", "server-1") == 0.0
    cluster.close()


def test_corruption_fault_window():
    cluster = build_cluster("ethereum", 2, seed=11)
    schedule = FaultSchedule(corruptions=[CorruptionFault(1.0, 3.0, rate=0.5)])
    schedule.arm(cluster)
    cluster.run_until(2.0)
    assert cluster.network.active_corruption_rate() == 0.5
    cluster.run_until(4.0)
    assert cluster.network.active_corruption_rate() == 0.0
    cluster.close()


def test_overlapping_delay_windows_end_at_own_until_time():
    """Two overlapping delays: the first ending must not clobber the
    second, and while both are active the extras stack."""
    cluster = build_cluster("ethereum", 2, seed=11)
    schedule = FaultSchedule(
        delays=[
            DelayFault(2.0, 6.0, extra_s=0.5),
            DelayFault(4.0, 10.0, extra_s=0.25),
        ]
    )
    schedule.arm(cluster)
    probe = lambda: cluster.network.active_delay_extra("server-0", "server-1")  # noqa: E731
    cluster.run_until(3.0)
    assert probe() == 0.5
    cluster.run_until(5.0)
    assert probe() == 0.75  # both windows active: extras stack
    cluster.run_until(7.0)
    assert probe() == 0.25  # first ended at 6.0; second keeps running
    cluster.run_until(11.0)
    assert probe() == 0.0  # second ended exactly at its own until_time
    cluster.close()


def test_partition_heal_does_not_end_overlapping_windows():
    """A partition healing inside delay+corruption windows leaves them
    active until their own until_times (heal() used to wipe them)."""
    cluster = build_cluster("ethereum", 4, seed=11)
    schedule = FaultSchedule(
        delays=[DelayFault(1.0, 10.0, extra_s=0.5)],
        corruptions=[CorruptionFault(1.0, 12.0, rate=0.3)],
        partitions=[PartitionFault(2.0, 5.0)],
    )
    schedule.arm(cluster)
    cluster.run_until(3.0)
    assert cluster.network.partitioned("server-0", "server-3")
    cluster.run_until(6.0)  # partition healed at 5.0
    assert not cluster.network.partitioned("server-0", "server-3")
    assert cluster.network.active_delay_extra("server-0", "server-1") == 0.5
    assert cluster.network.active_corruption_rate() == 0.3
    cluster.run_until(10.5)
    assert cluster.network.active_delay_extra("server-0", "server-1") == 0.0
    assert cluster.network.active_corruption_rate() == 0.3
    cluster.run_until(12.5)
    assert cluster.network.active_corruption_rate() == 0.0
    cluster.close()


def test_nested_corruption_and_delay_windows():
    """Corruption nested inside a delay window: each fault ends at its
    own until_time; effective corruption is the max of active rates."""
    cluster = build_cluster("ethereum", 2, seed=11)
    schedule = FaultSchedule(
        delays=[DelayFault(1.0, 20.0, extra_s=0.2)],
        corruptions=[
            CorruptionFault(2.0, 18.0, rate=0.1),
            CorruptionFault(5.0, 9.0, rate=0.6),
        ],
    )
    schedule.arm(cluster)
    cluster.run_until(3.0)
    assert cluster.network.active_corruption_rate() == 0.1
    cluster.run_until(6.0)
    assert cluster.network.active_corruption_rate() == 0.6  # max wins
    cluster.run_until(9.5)
    assert cluster.network.active_corruption_rate() == 0.1  # inner ended
    assert cluster.network.active_delay_extra("server-0", "server-1") == 0.2
    cluster.run_until(18.5)
    assert cluster.network.active_corruption_rate() == 0.0
    assert cluster.network.active_delay_extra("server-0", "server-1") == 0.2
    cluster.run_until(20.5)
    assert cluster.network.active_delay_extra("server-0", "server-1") == 0.0
    cluster.close()


def test_partition_fault_window():
    cluster = build_cluster("ethereum", 4, seed=11)
    schedule = FaultSchedule(partitions=[PartitionFault(2.0, 6.0)])
    schedule.arm(cluster)
    cluster.run_until(3.0)
    assert cluster.network.partitioned("server-0", "server-3")
    cluster.run_until(7.0)
    assert not cluster.network.partitioned("server-0", "server-3")
    cluster.close()


def test_figure9_pbft_halts_after_excess_crashes():
    """12 servers, 4 crashed: quorum 9 > 8 alive, so commits stop."""
    cluster = build_cluster("hyperledger", 12, seed=11)
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=4, request_rate_tx_s=20, duration_s=40),
    )
    driver.prepare()
    FaultSchedule(crashes=[CrashFault(at_time=20.0, count=4)]).arm(cluster)
    stats = driver.run()
    late = [t for t in stats.confirm_times if t > 25.0]
    early = [t for t in stats.confirm_times if t <= 20.0]
    assert early  # it worked before the crash
    assert not late  # and halted after
    cluster.close()


@pytest.mark.slow
def test_figure10_pow_forks_pbft_does_not():
    """Partition attack: Ethereum forks, Hyperledger never does."""
    results = {}
    for platform in ("ethereum", "hyperledger"):
        cluster = build_cluster(platform, 4, seed=13)
        driver = Driver(
            cluster,
            DoNothingWorkload(),
            DriverConfig(n_clients=4, request_rate_tx_s=20, duration_s=90),
        )
        driver.prepare()
        for client in driver.clients:
            client.start(90.0)
        report = run_partition_attack(
            cluster,
            attack_start=20.0,
            attack_duration=40.0,
            total_duration=100.0,
            sample_interval=5.0,
        )
        results[platform] = report
        cluster.close()
    assert results["ethereum"].final_fork_blocks() > 0
    assert results["ethereum"].fork_ratio() < 1.0
    assert results["hyperledger"].final_fork_blocks() == 0
    assert results["hyperledger"].fork_ratio() == 1.0


def test_attack_report_metrics():
    from repro.core.security import AttackReport, ForkSample

    report = AttackReport(
        samples=[
            ForkSample(10.0, 10, 10),
            ForkSample(20.0, 20, 15),
            ForkSample(30.0, 30, 24),
        ]
    )
    assert report.final_fork_blocks() == 6
    assert report.fork_ratio() == 24 / 30
    assert report.peak_fork_fraction() == 5 / 20  # worst sample


def test_attack_report_empty():
    from repro.core.security import AttackReport

    report = AttackReport()
    assert report.fork_ratio() == 1.0
    assert report.final_fork_blocks() == 0
    assert report.peak_fork_fraction() == 0.0
