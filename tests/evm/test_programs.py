"""Tests for the benchmark EVM programs, including sort correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evm import (
    EVM,
    CallContext,
    DictStorage,
    Profile,
    cpuheavy_code,
    donothing_code,
    kvstore_read_code,
    kvstore_write_code,
)


@pytest.fixture(scope="module")
def sort_code():
    return cpuheavy_code()


def test_donothing_returns_immediately():
    result = EVM().execute(donothing_code())
    assert result.success
    assert result.return_value == 1
    assert result.steps <= 3


def test_kvstore_write_then_read():
    storage = DictStorage()
    vm = EVM()
    write = vm.execute(
        kvstore_write_code(), storage=storage, context=CallContext(args=(7, 1234))
    )
    assert write.success
    read = vm.execute(
        kvstore_read_code(), storage=storage, context=CallContext(args=(7,))
    )
    assert read.return_value == 1234


def test_kvstore_write_gas_includes_sstore():
    result = EVM().execute(
        kvstore_write_code(), context=CallContext(args=(1, 2))
    )
    assert result.gas_used >= 20_000


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16, 63, 200])
def test_sort_correct_for_size(sort_code, n):
    result = EVM().execute(
        sort_code, context=CallContext(args=(n,)), capture_memory=True
    )
    assert result.success, result.error
    assert result.return_value == 1
    assert [result.memory.get(i, 0) for i in range(n)] == list(range(1, n + 1))


def test_sort_complexity_is_loglinear(sort_code):
    vm = EVM()
    steps_1k = vm.execute(sort_code, context=CallContext(args=(1000,))).steps
    steps_4k = vm.execute(sort_code, context=CallContext(args=(4000,))).steps
    # n log n scaling: 4x elements -> ~4.8x steps; quadratic would be 16x.
    assert steps_4k < steps_1k * 8


def test_sort_profiles_agree(sort_code):
    geth = EVM(Profile.GETH).execute(sort_code, context=CallContext(args=(50,)))
    parity = EVM(Profile.PARITY).execute(sort_code, context=CallContext(args=(50,)))
    assert geth.return_value == parity.return_value == 1
    assert geth.gas_used == parity.gas_used
    assert geth.modeled_peak_memory_bytes > parity.modeled_peak_memory_bytes


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=120))
def test_property_sort_any_size(sort_code, n):
    result = EVM().execute(
        sort_code, context=CallContext(args=(n,)), capture_memory=True
    )
    assert result.success
    assert [result.memory.get(i, 0) for i in range(n)] == sorted(
        range(1, n + 1)
    )
