"""Program-cache equivalence: decoding must never change semantics.

PR 2 made the EVM decode bytecode once into a cached ``Program``
(jumpdest set, PUSH immediates, handler dispatch ids). These tests pin
the requirement that caching is *observationally invisible*: every
``ExecutionResult`` field — gas, steps, journal entries, modeled
memory, return value, error strings — and every storage commit must be
identical whether the program was decoded fresh, decoded cold into the
cache, or served warm from it, for both GETH and PARITY profiles,
including the failure paths (bad jump, out of gas, REVERT, bad opcode,
truncated PUSH).
"""

import pytest

from repro.evm import EVM, CallContext, DictStorage, Profile, assemble
from repro.evm.program import (
    clear_program_cache,
    decode_program,
    program_cache_stats,
)
from repro.evm.programs import cpuheavy_code, kvstore_write_code

BAD_JUMP_ASM = "PUSH 3\nJUMP"
REVERT_ASM = "PUSH 5\nPUSH 1\nSSTORE\nREVERT"
SSTORE_ASM = "PUSH 5\nPUSH 1\nSSTORE\nPUSH 1\nRETURN"
LOOP_ASM = """
    PUSH 0          ; total
    PUSH 40         ; i
loop:
    DUP1
    ISZERO
    PUSH @end
    JUMPI
    DUP1
    SWAP2
    ADD
    SWAP1
    PUSH 1
    SUB
    PUSH @loop
    JUMP
end:
    POP
    RETURN
"""
MEMORY_ASM = """
    PUSH 11
    PUSH 3
    MSTORE
    PUSH 22
    PUSH 7
    MSTORE
    PUSH 3
    MLOAD
    RETURN
"""

CASES = [
    ("cpuheavy", cpuheavy_code(), (16,), None),
    ("kvstore_write", kvstore_write_code(), (9, 1234), None),
    ("loop", assemble(LOOP_ASM), (), None),
    ("memory", assemble(MEMORY_ASM), (), None),
    ("bad_jump", assemble(BAD_JUMP_ASM), (), None),
    ("revert", assemble(REVERT_ASM), (), None),
    ("out_of_gas_prologue", assemble(SSTORE_ASM), (), 5),
    ("out_of_gas_mid_sstore", assemble(SSTORE_ASM), (), 1_000),
    ("bad_opcode", bytes([0x60, 0, 0, 0, 0, 0, 0, 0, 1, 0xEE]), (), None),
    ("truncated_push", bytes([0x60, 1, 2]), (), None),
    ("empty", b"", (), None),
]


def _run(code, profile, args, gas_limit, use_cache):
    vm = EVM(profile, use_program_cache=use_cache)
    storage = DictStorage()
    result = vm.execute(
        code,
        storage=storage,
        context=CallContext(caller=7, call_value=3, args=tuple(args)),
        gas_limit=gas_limit,
        capture_memory=True,
    )
    return result, storage.data


@pytest.mark.parametrize("profile", [Profile.GETH, Profile.PARITY])
@pytest.mark.parametrize(
    "name,code,args,gas_limit", CASES, ids=[c[0] for c in CASES]
)
def test_cached_and_uncached_runs_are_identical(name, code, args, gas_limit, profile):
    clear_program_cache()
    uncached, uncached_storage = _run(code, profile, args, gas_limit, False)
    cold, cold_storage = _run(code, profile, args, gas_limit, True)
    warm, warm_storage = _run(code, profile, args, gas_limit, True)
    # ExecutionResult is a dataclass: == compares every field, including
    # gas_used, steps, journal_entries, modeled memory, and the full
    # captured memory dict.
    assert uncached == cold
    assert cold == warm
    assert uncached_storage == cold_storage == warm_storage


def test_warm_runs_hit_the_cache():
    clear_program_cache()
    code = cpuheavy_code()
    vm = EVM(Profile.PARITY)
    before = program_cache_stats()
    vm.execute(code, context=CallContext(args=(8,)))
    vm.execute(code, context=CallContext(args=(8,)))
    after = program_cache_stats()
    assert after["misses"] == before["misses"] + 1
    assert after["hits"] >= before["hits"] + 1
    assert after["size"] >= 1


def test_cached_program_object_is_shared():
    clear_program_cache()
    code = assemble(SSTORE_ASM)
    assert decode_program(code) is decode_program(code)
    # Uncached decodes build a fresh object every time.
    assert decode_program(code, use_cache=False) is not decode_program(
        code, use_cache=False
    )


def test_profiles_share_the_program_but_not_the_semantics():
    """GETH journals, PARITY does not — from the same cached Program."""
    clear_program_cache()
    code = assemble(SSTORE_ASM)
    geth = EVM(Profile.GETH).execute(code)
    parity = EVM(Profile.PARITY).execute(code)
    assert geth.journal_entries > 0
    assert parity.journal_entries == 0
    assert geth.gas_used == parity.gas_used
    assert geth.steps == parity.steps
    assert geth.modeled_peak_memory_bytes != parity.modeled_peak_memory_bytes
