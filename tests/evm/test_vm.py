"""Unit tests for the miniature EVM interpreter."""

import pytest

from repro.errors import OutOfMemory
from repro.evm import EVM, CallContext, DictStorage, Profile, assemble


def run(asm, profile=Profile.PARITY, storage=None, args=(), gas_limit=None, **kw):
    vm = EVM(profile, **kw)
    return vm.execute(
        assemble(asm),
        storage=storage,
        context=CallContext(args=tuple(args)),
        gas_limit=gas_limit,
    )


def test_arithmetic():
    assert run("PUSH 2\nPUSH 3\nADD\nRETURN").return_value == 5
    assert run("PUSH 10\nPUSH 4\nSUB\nRETURN").return_value == 6
    assert run("PUSH 6\nPUSH 7\nMUL\nRETURN").return_value == 42
    assert run("PUSH 17\nPUSH 5\nDIV\nRETURN").return_value == 3
    assert run("PUSH 17\nPUSH 5\nMOD\nRETURN").return_value == 2


def test_division_by_zero_yields_zero():
    assert run("PUSH 7\nPUSH 0\nDIV\nRETURN").return_value == 0
    assert run("PUSH 7\nPUSH 0\nMOD\nRETURN").return_value == 0


def test_wrapping_arithmetic():
    # 0 - 1 wraps to 2^256 - 1.
    result = run("PUSH 0\nPUSH 1\nSUB\nRETURN")
    assert result.return_value == (1 << 256) - 1


def test_comparisons():
    assert run("PUSH 1\nPUSH 2\nLT\nRETURN").return_value == 1
    assert run("PUSH 2\nPUSH 1\nLT\nRETURN").return_value == 0
    assert run("PUSH 2\nPUSH 1\nGT\nRETURN").return_value == 1
    assert run("PUSH 5\nPUSH 5\nEQ\nRETURN").return_value == 1
    assert run("PUSH 0\nISZERO\nRETURN").return_value == 1


def test_bitwise():
    assert run("PUSH 12\nPUSH 10\nAND\nRETURN").return_value == 8
    assert run("PUSH 12\nPUSH 10\nOR\nRETURN").return_value == 14
    assert run("PUSH 12\nPUSH 10\nXOR\nRETURN").return_value == 6


def test_memory_roundtrip():
    asm = """
        PUSH 99
        PUSH 7
        MSTORE
        PUSH 7
        MLOAD
        RETURN
    """
    assert run(asm).return_value == 99


def test_uninitialized_memory_is_zero():
    assert run("PUSH 1234\nMLOAD\nRETURN").return_value == 0


def test_storage_persists_across_runs():
    storage = DictStorage()
    write = "PUSH 41\nPUSH 1\nSSTORE\nPUSH 1\nRETURN"
    read = "PUSH 1\nSLOAD\nRETURN"
    assert run(write, storage=storage).success
    assert run(read, storage=storage).return_value == 41


def test_sload_sees_buffered_writes():
    asm = """
        PUSH 5
        PUSH 1
        SSTORE
        PUSH 1
        SLOAD
        RETURN
    """
    assert run(asm).return_value == 5


def test_failed_run_does_not_commit_storage():
    storage = DictStorage()
    asm = """
        PUSH 5
        PUSH 1
        SSTORE
        REVERT
    """
    result = run(asm, storage=storage)
    assert not result.success
    assert storage.get_word(1) == 0


def test_out_of_gas_reverts_and_reports():
    storage = DictStorage()
    asm = "PUSH 5\nPUSH 1\nSSTORE\nPUSH 1\nRETURN"
    result = run(asm, storage=storage, gas_limit=10)
    assert not result.success
    assert "gas" in result.error
    assert storage.get_word(1) == 0


def test_jumps_and_loops():
    # Sum 1..5 via a loop.
    asm = """
        PUSH 0          ; total
        PUSH 5          ; i
    loop:
        DUP1
        ISZERO
        PUSH @end
        JUMPI
        DUP1            ; [total, i, i]
        SWAP2           ; [i, i, total]
        ADD             ; [i, total+i]
        SWAP1           ; [total, i]
        PUSH 1
        SUB
        PUSH @loop
        JUMP
    end:
        POP
        RETURN
    """
    assert run(asm).return_value == 15


def test_bad_jump_fails():
    result = run("PUSH 3\nJUMP")
    assert not result.success
    assert "jump" in result.error


def test_jump_into_push_immediate_rejected():
    # Offset 1 is inside the PUSH immediate, not a JUMPDEST.
    result = run("PUSH 1\nJUMP")
    assert not result.success


def test_stack_underflow_detected():
    result = run("ADD")
    assert not result.success
    assert "underflow" in result.error


def test_bad_opcode_detected():
    vm = EVM()
    result = vm.execute(bytes([0xEE]))
    assert not result.success
    assert "opcode" in result.error


def test_calldata():
    assert run("PUSH 1\nCALLDATALOAD\nRETURN", args=(10, 20)).return_value == 20
    assert run("PUSH 9\nCALLDATALOAD\nRETURN", args=(10,)).return_value == 0


def test_caller_and_callvalue():
    vm = EVM()
    result = vm.execute(
        assemble("CALLER\nCALLVALUE\nADD\nRETURN"),
        context=CallContext(caller=100, call_value=11),
    )
    assert result.return_value == 111


def test_dup_swap_depth():
    asm = """
        PUSH 1
        PUSH 2
        PUSH 3
        DUP3        ; copies the 1
        RETURN
    """
    assert run(asm).return_value == 1
    asm2 = """
        PUSH 1
        PUSH 2
        PUSH 3
        SWAP2       ; swaps 3 and 1
        RETURN
    """
    assert run(asm2).return_value == 1


def test_gas_accounting_monotonic():
    cheap = run("PUSH 1\nRETURN")
    costly = run("PUSH 5\nPUSH 1\nSSTORE\nPUSH 1\nRETURN")
    assert costly.gas_used > cheap.gas_used + 10_000  # SSTORE_SET dominates


def test_geth_profile_journals_parity_does_not():
    asm = "PUSH 1\nPUSH 2\nADD\nRETURN"
    geth = run(asm, profile=Profile.GETH)
    parity = run(asm, profile=Profile.PARITY)
    assert geth.journal_entries > 0
    assert parity.journal_entries == 0
    assert geth.return_value == parity.return_value
    assert geth.gas_used == parity.gas_used  # same schedule, different engine


def test_memory_limit_raises_oom():
    vm = EVM(Profile.GETH, memory_limit_bytes=PROFILE_BASE_GETH + 10 * 2200)
    asm = """
        PUSH 0
    loop:
        DUP1
        DUP1
        MSTORE
        PUSH 1
        ADD
        PUSH @loop
        JUMP
    """
    with pytest.raises(OutOfMemory):
        vm.execute(assemble(asm))


def test_modeled_memory_grows_with_words():
    small = run("PUSH 1\nPUSH 0\nMSTORE\nPUSH 1\nRETURN")
    big_asm = "\n".join(f"PUSH 1\nPUSH {i}\nMSTORE" for i in range(50)) + "\nPUSH 1\nRETURN"
    big = run(big_asm)
    assert big.peak_memory_words == 50
    assert big.modeled_peak_memory_bytes > small.modeled_peak_memory_bytes


from repro.evm.vm import PROFILE_COSTS

PROFILE_BASE_GETH = PROFILE_COSTS[Profile.GETH].base_overhead_bytes


# ---------------------------------------------------------------------------
# StateStorage: EVM words over the platform StateAccess interface (PR 5)
# ---------------------------------------------------------------------------
def test_state_storage_bridges_to_state_access():
    from repro.contracts.base import DictState
    from repro.evm import StateStorage

    state = DictState()
    storage = StateStorage(state)
    write = "PUSH 41\nPUSH 1\nSSTORE\nPUSH 1\nRETURN"
    assert run(write, storage=storage).success
    # The write landed as a 32-byte big-endian slot in the kv state.
    assert state.data[(1).to_bytes(32, "big")] == (41).to_bytes(32, "big")
    # A fresh adapter over the same state sees the committed word.
    assert run("PUSH 1\nSLOAD\nRETURN", storage=StateStorage(state)).return_value == 41


def test_state_storage_zero_write_deletes_slot():
    from repro.contracts.base import DictState
    from repro.evm import StateStorage

    state = DictState()
    storage = StateStorage(state)
    storage.set_word(7, 99)
    assert (7).to_bytes(32, "big") in state.data
    storage.set_word(7, 0)
    assert (7).to_bytes(32, "big") not in state.data
    assert storage.get_word(7) == 0


def test_state_storage_matches_dict_storage_results():
    """Differential: the same program against DictStorage and
    StateStorage returns identical results and final word maps."""
    from repro.contracts.base import DictState
    from repro.evm import StateStorage

    asm = """
        PUSH 5
        PUSH 1
        SSTORE
        PUSH 7
        PUSH 2
        SSTORE
        PUSH 0
        PUSH 1
        SSTORE
        PUSH 2
        SLOAD
        RETURN
    """
    dict_storage = DictStorage()
    state = DictState()
    a = run(asm, storage=dict_storage)
    b = run(asm, storage=StateStorage(state))
    assert (a.success, a.return_value, a.gas_used) == (
        b.success, b.return_value, b.gas_used
    )
    words = {
        int.from_bytes(k, "big"): int.from_bytes(v, "big")
        for k, v in state.data.items()
    }
    assert words == dict_storage.data == {2: 7}


def test_commit_order_is_sorted_slot_order():
    """Storage commit flushes in sorted slot order regardless of the
    SSTORE sequence — the write-set a journaled overlay records is
    deterministic for a given final buffer."""
    class RecordingStorage(DictStorage):
        def __init__(self):
            super().__init__()
            self.order = []

        def set_word(self, key, value):
            self.order.append(key)
            super().set_word(key, value)

    storage = RecordingStorage()
    asm = """
        PUSH 1
        PUSH 9
        SSTORE
        PUSH 1
        PUSH 3
        SSTORE
        PUSH 1
        PUSH 6
        SSTORE
        PUSH 1
        RETURN
    """
    assert run(asm, storage=storage).success
    assert storage.order == sorted(storage.order) == [3, 6, 9]
