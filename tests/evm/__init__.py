"""Tests for the evm layer."""
