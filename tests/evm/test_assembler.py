"""Unit tests for the assembler."""

import pytest

from repro.errors import AssemblerError
from repro.evm import assemble
from repro.evm import opcodes as op


def test_simple_program():
    code = assemble("PUSH 5\nRETURN")
    assert code[0] == op.PUSH
    assert code[1:9] == (5).to_bytes(8, "big")
    assert code[9] == op.RETURN


def test_comments_and_blank_lines_ignored():
    code = assemble("""
        ; a comment
        PUSH 1   ; trailing comment

        RETURN
    """)
    assert len(code) == 10


def test_labels_resolve_to_jumpdest():
    code = assemble("""
        PUSH @end
        JUMP
    end:
        PUSH 1
        RETURN
    """)
    # Label offset: PUSH(9) + JUMP(1) = 10.
    assert code[10] == op.JUMPDEST
    assert int.from_bytes(code[1:9], "big") == 10


def test_forward_and_backward_references():
    code = assemble("""
    start:
        PUSH @end
        JUMPI
        PUSH @start
        JUMP
    end:
        RETURN
    """)
    assert code[0] == op.JUMPDEST


def test_hex_immediates():
    code = assemble("PUSH 0xff\nRETURN")
    assert int.from_bytes(code[1:9], "big") == 255


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("FROBNICATE")


def test_unknown_label_rejected():
    with pytest.raises(AssemblerError, match="unknown label"):
        assemble("PUSH @nowhere")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("x:\nx:\nRETURN")


def test_bad_immediate_rejected():
    with pytest.raises(AssemblerError, match="bad immediate"):
        assemble("PUSH banana")


def test_push_without_operand_rejected():
    with pytest.raises(AssemblerError, match="PUSH needs one operand"):
        assemble("PUSH")


def test_operand_on_plain_op_rejected():
    with pytest.raises(AssemblerError, match="takes no operand"):
        assemble("ADD 5")


def test_immediate_out_of_range():
    with pytest.raises(AssemblerError, match="out of range"):
        assemble(f"PUSH {1 << 64}")


def test_bad_label_name():
    with pytest.raises(AssemblerError, match="bad label"):
        assemble("1bad:")
