"""Property-based safety tests for PBFT.

Safety claim: across any pattern of crashes and partitions (within or
beyond the f < N/3 bound) and any corruption window, the committed
chains of all replicas are prefixes of one another — PBFT may stop
making progress (that is Figure 9's halt), but it never forks.
Liveness claim: with at most f crashes of non-primary replicas after
startup, outstanding work still commits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import PBFT, PBFTConfig

from .harness import build_cluster, make_tx, submit_everywhere

FAST = PBFTConfig(
    batch_size=10,
    batch_interval=0.1,
    view_timeout=1.0,
    view_timeout_backoff=0.5,
    request_timeout=3.0,
)


def pbft_factory(node, all_ids):
    return PBFT(node, FAST, replicas=all_ids)


def chains_are_prefixes(nodes) -> bool:
    chains = [
        [b.hash for b in node.chain().main_branch()] for node in nodes
    ]
    for i, a in enumerate(chains):
        for b in chains[i + 1:]:
            shared = min(len(a), len(b))
            if a[:shared] != b[:shared]:
                return False
    return True


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=7),
    crash_mask=st.lists(st.booleans(), min_size=4, max_size=7),
    crash_time=st.floats(min_value=0.0, max_value=8.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_safety_under_arbitrary_crashes(n, crash_mask, crash_time, seed):
    """Crashing ANY subset at ANY time never forks the survivors —
    even past the f bound, where the protocol simply halts."""
    sched, net, nodes = build_cluster(n, pbft_factory, seed=seed)
    submit_everywhere(nodes, [make_tx(i) for i in range(30)])
    victims = [node for node, dead in zip(nodes, crash_mask) if dead]
    for victim in victims:
        sched.schedule_at(crash_time, victim.crash)
    sched.run_until(25.0)
    assert chains_are_prefixes(nodes)
    for node in nodes:
        assert node.chain().fork_blocks == 0


@settings(max_examples=10, deadline=None)
@given(
    split=st.integers(min_value=1, max_value=6),
    heal_at=st.floats(min_value=2.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_safety_across_partitions(split, heal_at, seed):
    """Any two-way partition, healed at any time: no forks, ever —
    the Figure 10 result as a property."""
    n = 7
    split = min(split, n - 1)
    sched, net, nodes = build_cluster(n, pbft_factory, seed=seed)
    ids = [node.node_id for node in nodes]
    submit_everywhere(nodes, [make_tx(i) for i in range(30)])
    sched.schedule_at(1.0, net.partition, [ids[:split], ids[split:]])
    sched.schedule_at(heal_at, net.heal)
    sched.run_until(30.0)
    assert chains_are_prefixes(nodes)
    for node in nodes:
        assert node.chain().fork_blocks == 0


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=7),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_liveness_with_f_crashes(n, seed):
    """Exactly f non-primary crashes: the survivors commit everything
    (Figure 9's 16-server case in miniature)."""
    sched, net, nodes = build_cluster(n, pbft_factory, seed=seed)
    f = nodes[0].protocol.f
    # Crash the tail replicas; the view-0 primary (index 0) survives,
    # so no view change is even needed.
    for victim in nodes[-f:] if f else []:
        victim.crash()
    alive = nodes[: n - f]
    submit_everywhere(alive, [make_tx(i) for i in range(15)])
    sched.run_until(60.0)
    committed = {
        tx.tx_id
        for b in alive[0].chain().main_branch()
        for tx in b.transactions
    }
    assert len(committed) == 15
    assert chains_are_prefixes(alive)


@settings(max_examples=8, deadline=None)
@given(
    drop_window=st.floats(min_value=0.5, max_value=4.0),
    corruption_rate=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_safety_under_message_corruption(drop_window, corruption_rate, seed):
    """The paper's "random response" failure mode: corrupted messages
    fail verification and are dropped; safety holds throughout."""
    sched, net, nodes = build_cluster(4, pbft_factory, seed=seed)
    submit_everywhere(nodes, [make_tx(i) for i in range(20)])
    net.inject_corruption(corruption_rate)
    sched.schedule_at(drop_window, net.inject_corruption, 0.0)
    sched.run_until(40.0)
    assert chains_are_prefixes(nodes)
    for node in nodes:
        assert node.chain().fork_blocks == 0


@settings(max_examples=8, deadline=None)
@given(
    extra_delay=st.floats(min_value=0.05, max_value=1.5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_safety_under_network_delay(extra_delay, seed):
    """The paper's "network delay" failure mode: arbitrary injected
    latency slows commits (possibly through view changes) but never
    forks the log."""
    sched, net, nodes = build_cluster(4, pbft_factory, seed=seed)
    submit_everywhere(nodes, [make_tx(i) for i in range(20)])
    net.inject_delay(extra_delay, None)
    sched.schedule_at(10.0, net.inject_delay, 0.0, None)
    sched.run_until(40.0)
    assert chains_are_prefixes(nodes)
    for node in nodes:
        assert node.chain().fork_blocks == 0
