"""Unit tests for Tendermint: rounds, quorum math, locking, liveness."""

from repro.consensus import Tendermint, TendermintConfig

from .harness import build_cluster, make_tx, submit_everywhere

FAST = TendermintConfig(
    max_txs_per_block=10,
    tick_interval=0.1,
    commit_interval=0.1,
    propose_timeout=1.0,
    prevote_timeout=0.8,
    precommit_timeout=0.8,
)


def tm_factory(config=FAST):
    def factory(node, all_ids):
        return Tendermint(node, config, validators=all_ids)

    return factory


# ---------------------------------------------------------------------------
# Quorum math
# ---------------------------------------------------------------------------
def test_quorum_is_strict_two_thirds():
    sched, net, nodes = build_cluster(4, tm_factory())
    protocol = nodes[0].protocol
    assert protocol.n == 4
    assert protocol.f == 1
    assert protocol.quorum == 3  # > 2/3 of 4

    sched, net, nodes = build_cluster(7, tm_factory())
    assert nodes[0].protocol.f == 2
    assert nodes[0].protocol.quorum == 5

    sched, net, nodes = build_cluster(12, tm_factory())
    assert nodes[0].protocol.f == 3
    assert nodes[0].protocol.quorum == 9


def test_proposer_rotates_with_height_and_round():
    sched, net, nodes = build_cluster(4, tm_factory())
    protocol = nodes[0].protocol
    ids = protocol.validators
    assert protocol.proposer_of(1, 0) == ids[1]
    assert protocol.proposer_of(1, 1) == ids[2]
    assert protocol.proposer_of(2, 0) == ids[2]
    assert protocol.proposer_of(5, 3) == ids[(5 + 3) % 4]


# ---------------------------------------------------------------------------
# Happy path
# ---------------------------------------------------------------------------
def test_block_commits_everywhere():
    sched, net, nodes = build_cluster(4, tm_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(10)])
    sched.run_until(5.0)
    for node in nodes:
        assert node.chain().height == 1
        assert len(node.chain().tip.transactions) == 10
    assert len({n.chain().tip.hash for n in nodes}) == 1


def test_multiple_blocks_ordered_identically():
    sched, net, nodes = build_cluster(4, tm_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(55)])
    sched.run_until(20.0)
    orders = []
    for node in nodes:
        order = [
            tx.tx_id for b in node.chain().main_branch() for tx in b.transactions
        ]
        orders.append(order)
    assert len(orders[0]) == 55
    assert all(order == orders[0] for order in orders)


def test_no_forks_ever():
    sched, net, nodes = build_cluster(4, tm_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(100)])
    sched.run_until(30.0)
    assert all(node.chain().fork_blocks == 0 for node in nodes)


def test_finality_is_immediate():
    """confirmed_height tracks the chain tip: no confirmation depth."""
    sched, net, nodes = build_cluster(4, tm_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(5)])
    sched.run_until(5.0)
    for node in nodes:
        assert node.protocol.confirmed_height() == node.chain().height


def test_idle_network_stays_quiet():
    """No pending work => no rounds, no votes (create_empty_blocks=false)."""
    sched, net, nodes = build_cluster(4, tm_factory())
    sched.run_until(10.0)
    for node in nodes:
        assert node.chain().height == 0
        assert node.protocol.rounds_started == 0


# ---------------------------------------------------------------------------
# Round skipping and crash tolerance
# ---------------------------------------------------------------------------
def test_crashed_proposer_costs_one_round():
    sched, net, nodes = build_cluster(4, tm_factory())
    # Height 1 round 0 proposer is validators[1].
    proposer = next(
        n for n in nodes if n.node_id == nodes[0].protocol.proposer_of(1, 0)
    )
    proposer.crash()
    alive = [n for n in nodes if n is not proposer]
    submit_everywhere(alive, [make_tx(i) for i in range(10)])
    sched.run_until(15.0)
    for node in alive:
        assert node.chain().height >= 1
    # The commit happened in a round > 0 (the dead proposer's round timed out).
    committed = alive[0].chain().block_by_height(1)
    assert int(committed.header.meta("round", "0")) >= 1


def test_tolerates_f_crashes():
    sched, net, nodes = build_cluster(7, tm_factory())  # f = 2
    nodes[0].crash()
    nodes[1].crash()
    alive = nodes[2:]
    submit_everywhere(alive, [make_tx(i) for i in range(20)])
    sched.run_until(30.0)
    for node in alive:
        assert node.chain().height >= 1
    assert len({n.chain().tip.hash for n in alive}) == 1


def test_halts_beyond_f_crashes_but_stays_safe():
    sched, net, nodes = build_cluster(4, tm_factory())  # f = 1, quorum 3
    nodes[0].crash()
    nodes[1].crash()
    alive = nodes[2:]
    submit_everywhere(alive, [make_tx(i) for i in range(5)])
    sched.run_until(20.0)
    # 2 of 4 alive < quorum 3: no commit, and no divergence either.
    for node in alive:
        assert node.chain().height == 0
        assert node.chain().fork_blocks == 0


def test_rounds_escalate_while_blocked():
    sched, net, nodes = build_cluster(4, tm_factory())
    nodes[0].crash()
    nodes[1].crash()
    alive = nodes[2:]
    submit_everywhere(alive, [make_tx(0)])
    sched.run_until(20.0)
    # Liveness machinery keeps trying: rounds advance past 0.
    assert all(n.protocol.round >= 1 for n in alive)


# ---------------------------------------------------------------------------
# Partitions: safety across a network split
# ---------------------------------------------------------------------------
def test_minority_partition_cannot_commit():
    sched, net, nodes = build_cluster(4, tm_factory())
    ids = [n.node_id for n in nodes]
    net.partition([ids[:1], ids[1:]])
    submit_everywhere(nodes, [make_tx(i) for i in range(10)])
    sched.run_until(10.0)
    minority = nodes[0]
    majority = nodes[1:]
    assert minority.chain().height == 0
    for node in majority:
        assert node.chain().height >= 1


def test_even_split_halts_without_forking():
    """Neither half of a 4-validator split reaches quorum 3."""
    sched, net, nodes = build_cluster(4, tm_factory())
    ids = [n.node_id for n in nodes]
    net.partition([ids[:2], ids[2:]])
    submit_everywhere(nodes, [make_tx(i) for i in range(10)])
    sched.run_until(15.0)
    for node in nodes:
        assert node.chain().height == 0
        assert node.chain().fork_blocks == 0


def test_partition_heals_and_stragglers_catch_up():
    sched, net, nodes = build_cluster(4, tm_factory())
    ids = [n.node_id for n in nodes]
    net.partition([ids[:1], ids[1:]])
    submit_everywhere(nodes, [make_tx(i) for i in range(10)])
    sched.run_until(10.0)
    net.heal()
    # New work after heal carries higher-height votes to the straggler,
    # which triggers its sync path.
    submit_everywhere(nodes, [make_tx(i) for i in range(100, 110)])
    sched.run_until(40.0)
    heights = [n.chain().height for n in nodes]
    assert min(heights) >= 1
    tips = {n.chain().block_by_height(min(heights)).hash for n in nodes}
    assert len(tips) == 1


# ---------------------------------------------------------------------------
# Locking
# ---------------------------------------------------------------------------
def test_lock_is_released_after_commit():
    sched, net, nodes = build_cluster(4, tm_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(10)])
    sched.run_until(5.0)
    for node in nodes:
        assert node.protocol.locked_block is None
        assert node.protocol.locked_round == -1


def test_determinism_same_seed_same_chain():
    def run(seed):
        sched, net, nodes = build_cluster(4, tm_factory(), seed=seed)
        submit_everywhere(nodes, [make_tx(i) for i in range(30)])
        sched.run_until(15.0)
        return [b.hash for b in nodes[0].chain().main_branch()]

    assert run(7) == run(7)


def test_vote_messages_are_quadratic():
    """Two all-to-all vote phases: O(N^2) control messages per decision."""
    counts = {}
    for n in (4, 8):
        sched, net, nodes = build_cluster(n, tm_factory())
        submit_everywhere(nodes, [make_tx(0)])
        sched.run_until(5.0)
        counts[n] = net.stats.messages_sent
    # Doubling N should far more than double message count.
    assert counts[8] > 3 * counts[4]
