"""Unit tests for PBFT: three-phase commit, view changes, quorum math."""

from repro.consensus import PBFT, PBFTConfig

from .harness import build_cluster, make_tx, submit_everywhere

FAST = PBFTConfig(batch_size=10, batch_interval=0.1, view_timeout=2.0)


def pbft_factory(config=FAST):
    def factory(node, all_ids):
        return PBFT(node, config, replicas=all_ids)

    return factory


def test_quorum_math():
    sched, net, nodes = build_cluster(4, pbft_factory())
    protocol = nodes[0].protocol
    assert protocol.n == 4
    assert protocol.f == 1
    assert protocol.quorum == 3

    sched, net, nodes = build_cluster(12, pbft_factory())
    assert nodes[0].protocol.f == 3
    assert nodes[0].protocol.quorum == 9

    sched, net, nodes = build_cluster(16, pbft_factory())
    assert nodes[0].protocol.f == 5
    assert nodes[0].protocol.quorum == 11


def test_batch_commits_everywhere():
    sched, net, nodes = build_cluster(4, pbft_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(10)])
    sched.run_until(5.0)
    for node in nodes:
        assert node.chain().height == 1
        assert len(node.chain().tip.transactions) == 10
    assert len({n.chain().tip.hash for n in nodes}) == 1


def test_multiple_batches_ordered_identically():
    sched, net, nodes = build_cluster(4, pbft_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(55)])
    sched.run_until(20.0)
    orders = []
    for node in nodes:
        order = [
            tx.tx_id for b in node.chain().main_branch() for tx in b.transactions
        ]
        orders.append(order)
    assert len(orders[0]) == 55
    assert all(order == orders[0] for order in orders)


def test_no_forks_ever():
    sched, net, nodes = build_cluster(4, pbft_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(100)])
    sched.run_until(30.0)
    assert all(node.chain().fork_blocks == 0 for node in nodes)


def test_leader_crash_triggers_view_change():
    sched, net, nodes = build_cluster(4, pbft_factory())
    leader = next(n for n in nodes if n.protocol.is_leader())
    submit_everywhere(nodes, [make_tx(i) for i in range(5)])
    sched.run_until(3.0)
    # Crash the leader, then submit more work.
    leader.crash()
    submit_everywhere([n for n in nodes if n is not leader], [make_tx(i) for i in range(100, 110)])
    sched.run_until(30.0)
    survivors = [n for n in nodes if n is not leader]
    assert all(n.protocol.view > 0 for n in survivors)
    committed = {
        tx.tx_id
        for b in survivors[0].chain().main_branch()
        for tx in b.transactions
    }
    assert any(f"'{i}'" or True for i in range(100, 110))  # structural smoke
    assert len(committed) >= 10  # pre-crash and post-crash work both landed


def test_halts_beyond_crash_tolerance():
    # N=4: quorum 3; crashing 2 leaves 2 < 3 -> no progress, ever.
    sched, net, nodes = build_cluster(4, pbft_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(5)])
    sched.run_until(3.0)
    height = nodes[0].chain().height
    nodes[2].crash()
    nodes[3].crash()
    submit_everywhere(nodes[:2], [make_tx(i) for i in range(50, 60)])
    sched.run_until(30.0)
    assert nodes[0].chain().height == height
    assert nodes[1].chain().height == height


def test_figure9_invariant_12_halts_16_survives():
    """The paper's Figure 9: kill 4 nodes; 12-node HLF halts, 16-node continues."""
    # 12 replicas: quorum = 9 > 8 alive after 4 crashes -> halt.
    sched, net, nodes = build_cluster(12, pbft_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(30)])
    sched.run_until(5.0)
    height_at_kill = nodes[0].chain().height
    for node in nodes[8:]:
        node.crash()
    submit_everywhere(nodes[:8], [make_tx(i) for i in range(100, 140)])
    sched.run_until(40.0)
    assert nodes[0].chain().height == height_at_kill

    # 16 replicas: quorum = 11 <= 12 alive after 4 crashes -> progress.
    sched, net, nodes = build_cluster(16, pbft_factory())
    submit_everywhere(nodes, [make_tx(i) for i in range(30)])
    sched.run_until(5.0)
    height_at_kill = nodes[0].chain().height
    for node in nodes[12:]:
        node.crash()
    submit_everywhere(nodes[:12], [make_tx(i) for i in range(100, 140)])
    sched.run_until(60.0)
    assert nodes[0].chain().height > height_at_kill


def test_view_change_escalates_without_quorum():
    sched, net, nodes = build_cluster(4, pbft_factory())
    # Crash everyone but one; the survivor keeps escalating views.
    for node in nodes[1:]:
        node.crash()
    nodes[0].submit_tx(make_tx(1))
    sched.run_until(30.0)
    assert nodes[0].protocol.view_changes_started >= 2
    assert nodes[0].chain().height == 0


def test_corrupted_messages_ignored():
    sched, net, nodes = build_cluster(4, pbft_factory())
    net.inject_corruption(1.0)
    submit_everywhere(nodes, [make_tx(i) for i in range(5)])
    sched.run_until(10.0)
    # All consensus traffic corrupted -> no commits anywhere.
    assert all(node.chain().height == 0 for node in nodes)


def test_recovers_after_corruption_clears():
    sched, net, nodes = build_cluster(4, pbft_factory())
    net.inject_corruption(1.0)
    submit_everywhere(nodes, [make_tx(i) for i in range(5)])
    sched.run_until(10.0)
    net.inject_corruption(0.0)  # heal() is partition-only
    sched.run_until(40.0)
    assert all(node.chain().height >= 1 for node in nodes)


def test_sync_catches_up_lagging_replica():
    sched, net, nodes = build_cluster(4, pbft_factory())
    lagging = nodes[3]
    lagging.crash()
    submit_everywhere(nodes[:3], [make_tx(i) for i in range(25)])
    sched.run_until(10.0)
    assert nodes[0].chain().height >= 1
    lagging.recover()
    lagging.protocol._running = True
    # New work triggers pre-prepares ahead of the laggard's state -> sync.
    submit_everywhere(nodes, [make_tx(i) for i in range(100, 125)])
    sched.run_until(40.0)
    assert lagging.chain().height == nodes[0].chain().height
