"""Tests for the consensus layer."""
