"""Unit tests for Proof-of-Authority consensus."""

from repro.chain import Block
from repro.consensus import PoAConfig, ProofOfAuthority
from repro.crypto import EMPTY_HASH

from .harness import build_cluster, make_tx, submit_everywhere


def poa_factory(config=None):
    cfg = config or PoAConfig(step_duration=1.0, confirmation_depth=2)

    def factory(node, all_ids):
        return ProofOfAuthority(node, cfg, authorities=all_ids)

    return factory


def test_one_block_per_step():
    sched, net, nodes = build_cluster(4, poa_factory())
    sched.run_until(20.5)
    # One block per 1s step, starting at step 1.
    assert 18 <= nodes[0].chain().height <= 20


def test_sealers_rotate():
    sched, net, nodes = build_cluster(4, poa_factory())
    sched.run_until(12.5)
    sealers = [b.header.proposer for b in nodes[0].chain().main_branch()][1:]
    assert len(set(sealers)) == 4  # every authority sealed


def test_no_forks_in_healthy_network():
    sched, net, nodes = build_cluster(4, poa_factory())
    sched.run_until(30.3)  # off the step boundary so in-flight blocks land
    assert nodes[0].chain().fork_blocks == 0
    assert len({n.chain().tip.hash for n in nodes}) == 1


def test_transactions_included():
    sched, net, nodes = build_cluster(3, poa_factory())
    txs = [make_tx(i) for i in range(15)]
    submit_everywhere(nodes, txs)
    sched.run_until(10.0)
    committed = {
        tx.tx_id
        for block in nodes[0].chain().main_branch()
        for tx in block.transactions
    }
    assert {t.tx_id for t in txs} <= committed


def test_partition_forks_then_heals():
    sched, net, nodes = build_cluster(4, poa_factory())
    sched.run_until(5.2)
    net.partition([["n0", "n1"], ["n2", "n3"]])
    sched.run_until(20.2)
    net.heal()
    # Let the next sealed blocks propagate both branches.
    sched.run_until(40.2)
    assert max(node.chain().fork_blocks for node in nodes) > 0
    assert len({n.chain().tip.hash for n in nodes}) == 1


def test_invalid_seal_rejected():
    sched, net, nodes = build_cluster(3, poa_factory())
    sched.run_until(3.2)
    victim = nodes[1]
    height_before = victim.chain().height
    # Forge a block claiming a slot the sender does not own.
    step = victim.protocol.current_step() + 100
    wrong_owner = next(
        a for a in victim.protocol.authorities
        if a != victim.protocol.slot_owner(step)
    )
    forged = Block.build(
        height=victim.chain().height + 1,
        parent_hash=victim.chain().tip.hash,
        transactions=[],
        state_root=EMPTY_HASH,
        proposer=wrong_owner,
        timestamp=sched.now,
        consensus_meta={"step": str(step), "sealer": wrong_owner},
    )
    victim.protocol.on_message("poa/block", forged, wrong_owner)
    assert victim.chain().height == height_before


def test_missing_seal_metadata_rejected():
    sched, net, nodes = build_cluster(3, poa_factory())
    victim = nodes[0]
    bare = Block.build(
        height=1,
        parent_hash=victim.chain().tip.hash,
        transactions=[],
        state_root=EMPTY_HASH,
        proposer="nobody",
        timestamp=0.5,
    )
    victim.protocol.on_message("poa/block", bare, "n1")
    assert victim.chain().height == 0


def test_crashed_authority_slots_are_skipped():
    sched, net, nodes = build_cluster(4, poa_factory())
    sched.run_until(4.2)
    nodes[0].crash()
    sched.run_until(20.2)
    # Remaining three authorities seal 3 of every 4 slots.
    height = nodes[1].chain().height
    assert 11 <= height <= 16


def test_stop_stops_sealing():
    sched, net, nodes = build_cluster(1, poa_factory())
    sched.run_until(5.5)
    height = nodes[0].chain().height
    nodes[0].protocol.stop()
    sched.run_until(20.0)
    assert nodes[0].chain().height == height
