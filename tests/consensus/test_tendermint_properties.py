"""Property-based safety tests for Tendermint.

Safety claim: across any pattern of crashes and partitions (within or
beyond the f < N/3 bound), the committed chains of all validators are
prefixes of one another — Tendermint may halt, but it never forks.
Liveness claim: with at most f crashes and no partition, work commits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import Tendermint, TendermintConfig

from .harness import build_cluster, make_tx, submit_everywhere

FAST = TendermintConfig(
    max_txs_per_block=10,
    tick_interval=0.1,
    commit_interval=0.1,
    propose_timeout=0.8,
    prevote_timeout=0.6,
    precommit_timeout=0.6,
)


def tm_factory(node, all_ids):
    return Tendermint(node, FAST, validators=all_ids)


def chains_are_prefixes(nodes) -> bool:
    """Every pair of committed chains agrees on the common prefix."""
    chains = [
        [b.hash for b in node.chain().main_branch()] for node in nodes
    ]
    for i, a in enumerate(chains):
        for b in chains[i + 1:]:
            shared = min(len(a), len(b))
            if a[:shared] != b[:shared]:
                return False
    return True


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=7),
    crash_mask=st.lists(st.booleans(), min_size=4, max_size=7),
    crash_time=st.floats(min_value=0.0, max_value=8.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_safety_under_arbitrary_crashes(n, crash_mask, crash_time, seed):
    """Crashing ANY subset at ANY time never forks the survivors."""
    sched, net, nodes = build_cluster(n, tm_factory, seed=seed)
    submit_everywhere(nodes, [make_tx(i) for i in range(30)])
    victims = [node for node, dead in zip(nodes, crash_mask) if dead]
    for victim in victims:
        sched.schedule_at(crash_time, victim.crash)
    sched.run_until(25.0)
    assert chains_are_prefixes(nodes)
    for node in nodes:
        assert node.chain().fork_blocks == 0


@settings(max_examples=10, deadline=None)
@given(
    split=st.integers(min_value=1, max_value=6),
    heal_at=st.floats(min_value=2.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_safety_across_partitions(split, heal_at, seed):
    """Any two-way partition, healed at any time: prefixes still agree."""
    n = 7
    split = min(split, n - 1)
    sched, net, nodes = build_cluster(n, tm_factory, seed=seed)
    ids = [node.node_id for node in nodes]
    submit_everywhere(nodes, [make_tx(i) for i in range(30)])
    sched.schedule_at(1.0, net.partition, [ids[:split], ids[split:]])
    sched.schedule_at(heal_at, net.heal)
    sched.run_until(30.0)
    assert chains_are_prefixes(nodes)
    for node in nodes:
        assert node.chain().fork_blocks == 0


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=7),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_liveness_with_f_crashes(n, seed):
    """Exactly f crashes: the survivors still commit everything."""
    sched, net, nodes = build_cluster(n, tm_factory, seed=seed)
    f = nodes[0].protocol.f
    for victim in nodes[:f]:
        victim.crash()
    alive = nodes[f:]
    submit_everywhere(alive, [make_tx(i) for i in range(15)])
    sched.run_until(60.0)
    committed = {
        tx.tx_id
        for b in alive[0].chain().main_branch()
        for tx in b.transactions
    }
    assert len(committed) == 15
    assert chains_are_prefixes(alive)


@settings(max_examples=8, deadline=None)
@given(
    drop_window=st.floats(min_value=0.5, max_value=4.0),
    corruption_rate=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_safety_under_message_corruption(drop_window, corruption_rate, seed):
    """Corrupted (dropped-at-verification) messages never cause forks."""
    sched, net, nodes = build_cluster(4, tm_factory, seed=seed)
    submit_everywhere(nodes, [make_tx(i) for i in range(20)])
    net.inject_corruption(corruption_rate)
    sched.schedule_at(drop_window, net.inject_corruption, 0.0)
    sched.run_until(40.0)
    assert chains_are_prefixes(nodes)
    for node in nodes:
        assert node.chain().fork_blocks == 0
