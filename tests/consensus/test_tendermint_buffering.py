"""Future-height buffering in Tendermint (gossip race handling).

A proposal or vote for height ``h+1`` routinely arrives while a
validator is still finishing height ``h`` — gossip does not wait.
Dropping it would stall the next round until its propose timeout, so
the protocol buffers near-future round state and acts on it the moment
the round is entered (tendermint-core behaves the same way).
"""

from repro.chain import Block
from repro.consensus.tendermint import (
    FUTURE_HEIGHT_WINDOW,
    PRECOMMIT,
    PREVOTE,
    PROPOSAL,
    Tendermint,
    TendermintConfig,
)
from repro.crypto import EMPTY_HASH

from .harness import build_cluster, make_tx, submit_everywhere


def _tendermint_cluster(n=4, seed=42, **config_kwargs):
    config = TendermintConfig(**config_kwargs)
    return build_cluster(
        n, lambda node, ids: Tendermint(node, config, ids), seed=seed
    )


def _block_for(node, height, round_, proposer):
    """A well-formed proposal block for (height, round_)."""
    parent = node.chain().tip
    txs = [make_tx(height * 100 + 1)]
    return Block.build(
        height=height,
        parent_hash=parent.hash if height == parent.height + 1 else EMPTY_HASH,
        transactions=txs,
        state_root=EMPTY_HASH,
        proposer=proposer,
        timestamp=0.0,
        consensus_meta={"height": str(height), "round": str(round_)},
    )


def test_future_proposal_is_buffered():
    scheduler, network, nodes = _tendermint_cluster()
    node = nodes[0]
    proto = node.protocol
    assert proto.height == 1
    future_height = proto.height + 1
    proposer = proto.proposer_of(future_height, 0)
    block = _block_for(node, future_height, 0, proposer)
    proto.on_message(PROPOSAL, block, proposer)
    assert proto._round_state(future_height, 0).proposal is block


def test_far_future_proposal_is_not_buffered():
    scheduler, network, nodes = _tendermint_cluster()
    proto = nodes[0].protocol
    far = proto.height + FUTURE_HEIGHT_WINDOW + 1
    proposer = proto.proposer_of(far, 0)
    block = _block_for(nodes[0], far, 0, proposer)
    proto.on_message(PROPOSAL, block, proposer)
    assert proto._round_state(far, 0).proposal is None


def test_future_proposal_from_wrong_proposer_rejected():
    scheduler, network, nodes = _tendermint_cluster()
    proto = nodes[0].protocol
    future_height = proto.height + 1
    legitimate = proto.proposer_of(future_height, 0)
    impostor = next(v for v in proto.validators if v != legitimate)
    block = _block_for(nodes[0], future_height, 0, impostor)
    proto.on_message(PROPOSAL, block, impostor)
    assert proto._round_state(future_height, 0).proposal is None


def test_future_votes_are_buffered():
    scheduler, network, nodes = _tendermint_cluster()
    proto = nodes[0].protocol
    future_height = proto.height + 1
    vote = {"height": future_height, "round": 0, "digest": None}
    proto.on_message(PREVOTE, dict(vote), "n1")
    proto.on_message(PRECOMMIT, dict(vote), "n2")
    state = proto._round_state(future_height, 0)
    assert state.prevotes == {"n1": None}
    assert state.precommits == {"n2": None}


def test_far_future_votes_are_not_buffered():
    scheduler, network, nodes = _tendermint_cluster()
    proto = nodes[0].protocol
    far = proto.height + FUTURE_HEIGHT_WINDOW + 1
    proto.on_message(PREVOTE, {"height": far, "round": 0, "digest": None}, "n1")
    assert proto._round_state(far, 0).prevotes == {}


def test_enter_round_acts_on_buffered_proposal():
    """A validator entering a round whose proposal already arrived
    prevotes it immediately instead of waiting out the propose timeout."""
    scheduler, network, nodes = _tendermint_cluster()
    node = nodes[0]
    proto = node.protocol
    # Height 1, round 0: node 0 is not the proposer for (1, 0) in a
    # 4-node cluster (proposer is validators[1]); feed it the proposal
    # before it enters the round.
    proposer = proto.proposer_of(1, 0)
    assert proposer != node.node_id
    block = _block_for(node, 1, 0, proposer)
    proto.on_message(PROPOSAL, block, proposer)
    assert proto.step == "idle"
    # Entering the round must pick the proposal up and prevote it.
    node.submit_tx(make_tx(1))
    proto._enter_round(0)
    state = proto._round_state(1, 0)
    assert state.prevote_sent
    assert state.prevotes[node.node_id] == block.hash


def test_no_round_stalls_under_continuous_load():
    """With buffering, every height should normally decide in round 0:
    rounds started stays close to blocks committed on every node."""
    scheduler, network, nodes = _tendermint_cluster(seed=7)
    submit_everywhere(nodes, [make_tx(i) for i in range(400)])

    def trickle(i=0):
        if i < 40:
            submit_everywhere(nodes, [make_tx(1000 + i)])
            scheduler.schedule(0.5, trickle, i + 1)

    trickle()
    scheduler.run_until(30.0)
    for node in nodes:
        committed = node.protocol.blocks_committed
        assert committed > 10
        # A small number of extra rounds is tolerated (startup races),
        # but systematic stalling (2x rounds) is a regression.
        assert node.protocol.rounds_started <= committed + 5


def test_chains_agree_after_load():
    scheduler, network, nodes = _tendermint_cluster(seed=11)
    submit_everywhere(nodes, [make_tx(i) for i in range(200)])
    scheduler.run_until(30.0)
    heights = [n.chain().height for n in nodes]
    common = min(heights)
    assert common > 0
    reference = nodes[0].chain()
    for node in nodes[1:]:
        for h in range(1, common + 1):
            assert node.chain().block_by_height(h).hash == (
                reference.block_by_height(h).hash
            )
