"""Minimal ConsensusHost used to test protocols in isolation.

This is deliberately thinner than the real platform nodes: no contract
execution, no storage engines — just a chain, a mempool, and message
routing, so protocol behaviour can be asserted without platform noise.
"""

from __future__ import annotations

from repro.chain import Block, Blockchain, Mempool, Transaction
from repro.crypto import EMPTY_HASH
from repro.sim import Network, RngRegistry, Scheduler, SimNode


class HarnessNode(SimNode):
    """SimNode + ConsensusHost for protocol unit tests."""

    def __init__(self, node_id, scheduler, network, rng_registry, inbox_capacity=None):
        super().__init__(node_id, scheduler, network, inbox_capacity=inbox_capacity)
        self._rng = rng_registry.stream(node_id)
        self._chain = Blockchain()
        self.mempool = Mempool()
        self.protocol = None
        self.committed_blocks = []

    # -- ConsensusHost ---------------------------------------------------
    @property
    def now(self):
        return self.scheduler.now

    def send_to(self, recipient, kind, payload, size_bytes):
        self.send(recipient, kind, payload, size_bytes)

    def broadcast_to_peers(self, kind, payload, size_bytes):
        self.broadcast(kind, payload, size_bytes)

    def peer_ids(self):
        return [n for n in self.network.node_ids() if n != self.node_id]

    def rng(self):
        return self._rng

    def chain(self):
        return self._chain

    def pending_count(self):
        return len(self.mempool)

    def oldest_request_age(self):
        return self.mempool.oldest_pending_age(self.now)

    def assemble_block(self, parent, consensus_meta, max_txs):
        txs = self.mempool.peek_batch(max_txs if max_txs is not None else 10_000)
        return Block.build(
            height=parent.height + 1,
            parent_hash=parent.hash,
            transactions=txs,
            state_root=EMPTY_HASH,
            proposer=self.node_id,
            timestamp=self.now,
            consensus_meta=consensus_meta,
        )

    def deliver_block(self, block, execute=True):
        was_new = not self._chain.contains(block.hash)
        changed = self._chain.add_block(block)
        if was_new and self._chain.contains(block.hash):
            self.mempool.remove(tx.tx_id for tx in block.transactions)
            self.committed_blocks.append(block)
        return changed

    # -- SimNode ----------------------------------------------------------
    def handle_message(self, message):
        if message.corrupted:
            return  # signature check fails
        if self.protocol is not None and message.kind in self.protocol.message_kinds:
            self.protocol.on_message(message.kind, message.payload, message.sender)

    def submit_tx(self, tx):
        if self.mempool.add(tx, self.now) and self.protocol is not None:
            self.protocol.on_new_pending_tx()

    def crash(self):
        super().crash()
        if self.protocol is not None:
            self.protocol.stop()


def build_cluster(n, protocol_factory, seed=42, inbox_capacity=None):
    """N HarnessNodes wired to one network, protocols attached."""
    scheduler = Scheduler()
    registry = RngRegistry(seed)
    network = Network(scheduler, registry)
    nodes = [
        HarnessNode(f"n{i}", scheduler, network, registry, inbox_capacity)
        for i in range(n)
    ]
    for node in nodes:
        node.protocol = protocol_factory(node, [x.node_id for x in nodes])
        node.protocol.start()
    return scheduler, network, nodes


def make_tx(i, contract="kv", function="write"):
    return Transaction.create(f"client-{i % 4}", contract, function, (i,), nonce=i)


def submit_everywhere(nodes, txs):
    for tx in txs:
        for node in nodes:
            node.submit_tx(tx)
