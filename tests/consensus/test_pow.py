"""Unit tests for Proof-of-Work consensus."""


from repro.consensus import PoWConfig, ProofOfWork

from .harness import build_cluster, make_tx, submit_everywhere


def pow_factory(config=None):
    cfg = config or PoWConfig(base_block_interval=1.0, confirmation_depth=2)

    def factory(node, all_ids):
        return ProofOfWork(node, cfg)

    return factory


def test_single_miner_produces_blocks():
    sched, net, nodes = build_cluster(1, pow_factory())
    sched.run_until(30.0)
    height = nodes[0].chain().height
    # ~30 blocks expected at 1s interval; allow wide stochastic margin.
    assert 10 <= height <= 70


def test_block_interval_tracks_difficulty():
    cfg = PoWConfig(base_block_interval=5.0, confirmation_depth=2)
    sched, net, nodes = build_cluster(1, pow_factory(cfg))
    sched.run_until(100.0)
    assert 8 <= nodes[0].chain().height <= 40


def test_miners_converge_on_one_chain():
    sched, net, nodes = build_cluster(4, pow_factory())
    sched.run_until(40.0)
    tips = {node.chain().tip.hash for node in nodes}
    assert len(tips) == 1
    assert nodes[0].chain().height > 5


def test_transactions_get_mined():
    sched, net, nodes = build_cluster(2, pow_factory())
    txs = [make_tx(i) for i in range(20)]
    submit_everywhere(nodes, txs)
    sched.run_until(30.0)
    mined = {
        tx.tx_id
        for block in nodes[0].chain().main_branch()
        for tx in block.transactions
    }
    assert {t.tx_id for t in txs} <= mined


def test_partition_causes_forks_then_heals():
    sched, net, nodes = build_cluster(4, pow_factory())
    sched.run_until(10.0)
    net.partition([["n0", "n1"], ["n2", "n3"]])
    sched.run_until(40.0)
    net.heal()
    sched.run_until(80.0)
    # The losing side keeps its abandoned branch: forks visible there.
    assert max(node.chain().fork_blocks for node in nodes) > 0
    tips = {node.chain().tip.hash for node in nodes}
    assert len(tips) == 1  # converged after heal


def test_difficulty_grows_superlinearly_with_network():
    cfg = PoWConfig(base_block_interval=2.5, reference_nodes=8, difficulty_exponent=1.45)
    assert cfg.network_interval(8) == 2.5
    assert cfg.network_interval(16) > 2.5 * 2  # super-linear
    assert cfg.network_interval(4) == 2.5  # floor at reference


def test_confirmed_height_lags_tip():
    sched, net, nodes = build_cluster(1, pow_factory())
    sched.run_until(30.0)
    protocol = nodes[0].protocol
    assert protocol.confirmed_height() == max(0, nodes[0].chain().height - 2)


def test_stop_halts_mining():
    sched, net, nodes = build_cluster(1, pow_factory())
    sched.run_until(10.0)
    height = nodes[0].chain().height
    nodes[0].protocol.stop()
    sched.run_until(40.0)
    assert nodes[0].chain().height == height


def test_mining_consumes_cpu():
    sched, net, nodes = build_cluster(1, pow_factory())
    sched.run_until(20.0)
    # Mining burns all configured cores continuously.
    assert nodes[0].cpu_time >= 20.0 * 0.8 * 8


def test_deterministic_with_seed():
    def run():
        sched, net, nodes = build_cluster(3, pow_factory(), seed=9)
        sched.run_until(30.0)
        return [node.chain().tip.hash for node in nodes]

    assert run() == run()
