"""Test suite for the BLOCKBENCH reproduction (importable package)."""
