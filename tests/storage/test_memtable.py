"""MemTable unit tests: byte accounting, tombstones, flush ordering."""

import pytest

from repro.storage.lsm.memtable import TOMBSTONE, MemTable


def test_put_then_get():
    table = MemTable()
    table.put(b"a", b"1")
    assert table.get(b"a") == b"1"
    assert table.get(b"missing") is None


def test_len_and_bool():
    table = MemTable()
    assert not table
    assert len(table) == 0
    table.put(b"a", b"1")
    table.put(b"b", b"2")
    assert table
    assert len(table) == 2


def test_delete_records_tombstone_not_removal():
    """Deletes must shadow older on-disk versions, so the memtable keeps
    an explicit marker instead of forgetting the key."""
    table = MemTable()
    table.put(b"a", b"1")
    table.delete(b"a")
    assert table.get(b"a") == TOMBSTONE
    assert len(table) == 1


def test_byte_accounting_grows_and_shrinks_on_overwrite():
    table = MemTable()
    table.put(b"key", b"v" * 100)
    assert table.approx_bytes == 3 + 100
    table.put(b"key", b"v" * 10)  # overwrite with smaller value
    assert table.approx_bytes == 3 + 10
    table.put(b"key2", b"w" * 5)
    assert table.approx_bytes == 3 + 10 + 4 + 5


def test_byte_accounting_counts_tombstones():
    table = MemTable()
    table.put(b"k", b"value-bytes")
    table.delete(b"k")
    assert table.approx_bytes == 1 + len(TOMBSTONE)


def test_sorted_items_is_key_ordered_and_includes_tombstones():
    table = MemTable()
    table.put(b"b", b"2")
    table.put(b"a", b"1")
    table.put(b"c", b"3")
    table.delete(b"b")
    items = list(table.sorted_items())
    assert [k for k, _ in items] == [b"a", b"b", b"c"]
    assert dict(items)[b"b"] == TOMBSTONE


def test_clear_resets_everything():
    table = MemTable()
    table.put(b"a", b"1")
    table.clear()
    assert not table
    assert table.approx_bytes == 0
    assert table.get(b"a") is None


@pytest.mark.parametrize("n", [1, 10, 250])
def test_sorted_items_matches_dict_contents(n):
    table = MemTable()
    expected = {}
    for i in range(n):
        key = f"k{i:05d}".encode()
        value = f"v{i}".encode()
        table.put(key, value)
        expected[key] = value
    assert dict(table.sorted_items()) == expected
