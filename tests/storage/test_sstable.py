"""Unit tests for SSTable read/write."""

import pytest

from repro.errors import CorruptionError
from repro.storage import SSTableReader, write_sstable
from repro.storage.lsm.memtable import TOMBSTONE


def make_table(tmp_path, items, name="t.sst"):
    return write_sstable(tmp_path / name, iter(items))


def test_roundtrip_all_records(tmp_path):
    items = [(f"key-{i:04d}".encode(), f"val-{i}".encode()) for i in range(100)]
    table = make_table(tmp_path, items)
    assert list(table.items()) == items
    assert table.record_count == 100


def test_point_lookups(tmp_path):
    items = [(f"key-{i:04d}".encode(), str(i).encode()) for i in range(257)]
    table = make_table(tmp_path, items)
    for key, value in items:
        assert table.get(key) == value


def test_missing_keys_return_none(tmp_path):
    items = [(f"key-{i:04d}".encode(), b"v") for i in range(64)]
    table = make_table(tmp_path, items)
    assert table.get(b"absent") is None
    assert table.get(b"key-9999") is None
    assert table.get(b"aaa") is None  # below min key


def test_min_max_keys(tmp_path):
    items = [(b"banana", b"1"), (b"cherry", b"2"), (b"date", b"3")]
    table = make_table(tmp_path, items)
    assert table.min_key == b"banana"
    assert table.max_key == b"date"
    assert table.may_contain_range(b"coconut")
    assert not table.may_contain_range(b"apple")
    assert not table.may_contain_range(b"elderberry")


def test_reopen_from_disk(tmp_path):
    items = [(f"k{i:03d}".encode(), b"v") for i in range(40)]
    original = make_table(tmp_path, items)
    reopened = SSTableReader(original.path)
    assert list(reopened.items()) == items
    assert reopened.get(b"k020") == b"v"


def test_tombstones_visible_raw_hidden_live(tmp_path):
    items = [(b"a", b"1"), (b"b", TOMBSTONE), (b"c", b"3")]
    table = make_table(tmp_path, items)
    assert table.get(b"b") == TOMBSTONE
    assert list(table.live_items()) == [(b"a", b"1"), (b"c", b"3")]


def test_empty_table(tmp_path):
    table = make_table(tmp_path, [])
    assert table.record_count == 0
    assert table.get(b"anything") is None
    assert list(table.items()) == []
    assert not table.may_contain_range(b"x")


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.sst"
    path.write_bytes(b"NOPE" + b"\x00" * 64)
    with pytest.raises(CorruptionError):
        SSTableReader(path)


def test_delete_file(tmp_path):
    table = make_table(tmp_path, [(b"a", b"1")])
    table.delete_file()
    assert not table.path.exists()
    table.delete_file()  # idempotent


def test_large_values(tmp_path):
    big = b"x" * 100_000
    table = make_table(tmp_path, [(b"big", big)])
    assert table.get(b"big") == big
