"""Tests for the storage layer."""
