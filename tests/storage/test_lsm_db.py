"""Unit, recovery, and property tests for the LSM engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import LSMConfig, LSMStore, leveldb_config, rocksdb_config
from repro.storage.lsm.memtable import TOMBSTONE

SMALL = LSMConfig(memtable_bytes=512, l0_compaction_trigger=3, base_level_bytes=2048)


def test_put_get_in_memtable(tmp_path):
    db = LSMStore(tmp_path)
    db.put(b"k", b"v")
    assert db.get(b"k") == b"v"
    db.close()


def test_get_missing(tmp_path):
    db = LSMStore(tmp_path)
    assert db.get(b"nothing") is None
    db.close()


def test_delete_shadows_older_value(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    db.put(b"k", b"v")
    db.flush()
    db.delete(b"k")
    assert db.get(b"k") is None
    db.flush()
    assert db.get(b"k") is None
    db.close()


def test_tombstone_value_rejected(tmp_path):
    db = LSMStore(tmp_path)
    with pytest.raises(StorageError):
        db.put(b"k", TOMBSTONE)
    db.close()


def test_flush_creates_sstable_and_clears_memtable(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    db.put(b"k", b"v")
    db.flush()
    assert len(db.memtable) == 0
    assert len(db.levels[0]) == 1
    assert db.get(b"k") == b"v"
    db.close()


def test_automatic_flush_on_memtable_size(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    for i in range(100):
        db.put(f"key-{i:04d}".encode(), b"x" * 20)
    assert db.flush_count > 0
    db.close()


def test_compaction_triggers_and_preserves_data(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    expected = {}
    for i in range(400):
        key = f"key-{i % 60:04d}".encode()
        value = f"value-{i}".encode()
        db.put(key, value)
        expected[key] = value
    assert db.compaction_count > 0
    for key, value in expected.items():
        assert db.get(key) == value
    db.close()


def test_newest_value_wins_across_levels(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    db.put(b"k", b"old")
    db.flush()
    db.put(b"k", b"new")
    assert db.get(b"k") == b"new"
    db.flush()
    assert db.get(b"k") == b"new"
    db.close()


def test_scan_merges_all_sources(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    db.put(b"a", b"1")
    db.flush()
    db.put(b"b", b"2")
    db.put(b"a", b"updated")
    assert list(db.scan()) == [(b"a", b"updated"), (b"b", b"2")]
    db.close()


def test_scan_prefix(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    for key in [b"user:1", b"user:2", b"order:1"]:
        db.put(key, b"v")
    assert [k for k, _ in db.scan(b"user:")] == [b"user:1", b"user:2"]
    db.close()


def test_scan_hides_deletions(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    db.put(b"a", b"1")
    db.put(b"b", b"2")
    db.flush()
    db.delete(b"a")
    assert list(db.scan()) == [(b"b", b"2")]
    db.close()


def test_reopen_recovers_from_manifest_and_wal(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    for i in range(50):
        db.put(f"key-{i:03d}".encode(), str(i).encode())
    db.flush()
    db.put(b"unflushed", b"in-wal-only")
    db.close()

    db2 = LSMStore(tmp_path, SMALL)
    assert db2.get(b"key-025") == b"25"
    assert db2.get(b"unflushed") == b"in-wal-only"
    db2.close()


def test_reopen_without_close_replays_wal(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    db.put(b"crash", b"survivor")
    db.wal.sync()
    # Simulate a crash: no close(), no flush.
    db2 = LSMStore(tmp_path, SMALL)
    assert db2.get(b"crash") == b"survivor"
    db2.close()


def test_disk_usage_grows_with_data(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    empty = db.disk_usage_bytes()
    for i in range(200):
        db.put(f"key-{i:05d}".encode(), b"x" * 50)
    db.flush()
    assert db.disk_usage_bytes() > empty
    db.close()


def test_closed_store_rejects_ops(tmp_path):
    db = LSMStore(tmp_path)
    db.close()
    with pytest.raises(StorageError):
        db.put(b"k", b"v")
    with pytest.raises(StorageError):
        db.get(b"k")


def test_presets_differ():
    assert rocksdb_config().memtable_bytes > leveldb_config().memtable_bytes
    assert rocksdb_config().base_level_bytes > leveldb_config().base_level_bytes


def test_len_counts_live_keys(tmp_path):
    db = LSMStore(tmp_path, SMALL)
    db.put(b"a", b"1")
    db.put(b"b", b"2")
    db.delete(b"a")
    assert len(db) == 1
    db.close()


_key = st.binary(min_size=1, max_size=6)
_value = st.binary(min_size=0, max_size=20).filter(lambda v: v != TOMBSTONE)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "delete"]), _key, _value),
        max_size=120,
    )
)
def test_property_lsm_matches_dict_model(tmp_path_factory, ops):
    tmp = tmp_path_factory.mktemp("lsm")
    db = LSMStore(tmp, LSMConfig(memtable_bytes=256, l0_compaction_trigger=2))
    model = {}
    for op, key, value in ops:
        if op == "put":
            db.put(key, value)
            model[key] = value
        else:
            db.delete(key)
            model.pop(key, None)
    for key, value in model.items():
        assert db.get(key) == value
    assert dict(db.scan()) == model
    db.close()
    reopened = LSMStore(tmp, LSMConfig(memtable_bytes=256, l0_compaction_trigger=2))
    assert dict(reopened.scan()) == model
    reopened.close()
