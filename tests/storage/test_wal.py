"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import CorruptionError
from repro.storage import WriteAheadLog


def test_append_and_replay(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"k1", b"v1")
    wal.append(b"k2", b"v2")
    wal.sync()
    wal.close()
    assert list(WriteAheadLog.replay(path)) == [(b"k1", b"v1"), (b"k2", b"v2")]


def test_replay_missing_file_is_empty(tmp_path):
    assert list(WriteAheadLog.replay(tmp_path / "absent.log")) == []


def test_torn_tail_tolerated(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"good", b"record")
    wal.sync()
    wal.close()
    with open(path, "ab") as f:
        f.write(b"\x00\x00\x00\x01\x00\x00\x00\x05")  # header without payload
    assert list(WriteAheadLog.replay(path)) == [(b"good", b"record")]


def test_corrupted_record_detected(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"key", b"value")
    wal.sync()
    wal.close()
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF  # flip a payload byte; CRC must catch it
    path.write_bytes(bytes(blob))
    with pytest.raises(CorruptionError):
        list(WriteAheadLog.replay(path))


def test_reset_truncates(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"k", b"v")
    wal.reset()
    wal.append(b"k2", b"v2")
    wal.sync()
    wal.close()
    assert list(WriteAheadLog.replay(path)) == [(b"k2", b"v2")]


def test_empty_values_roundtrip(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(b"", b"")
    wal.append(b"k", b"")
    wal.sync()
    wal.close()
    assert list(WriteAheadLog.replay(path)) == [(b"", b""), (b"k", b"")]
