"""Unit tests for the in-memory KV store (Parity's state backend)."""

import pytest

from repro.errors import StorageError
from repro.storage import MemKVStore


def test_put_get_delete():
    store = MemKVStore()
    store.put(b"a", b"1")
    assert store.get(b"a") == b"1"
    store.delete(b"a")
    assert store.get(b"a") is None


def test_delete_missing_is_noop():
    store = MemKVStore()
    store.delete(b"ghost")
    assert store.approx_bytes() == 0


def test_contains():
    store = MemKVStore()
    store.put(b"a", b"1")
    assert b"a" in store
    assert b"b" not in store


def test_byte_accounting_on_overwrite():
    store = MemKVStore()
    store.put(b"k", b"12345")
    store.put(b"k", b"1")
    assert store.approx_bytes() == len(b"k") + 1


def test_scan_ordered_with_prefix():
    store = MemKVStore()
    for key in [b"b:2", b"a:1", b"b:1", b"c:9"]:
        store.put(key, b"v")
    assert [k for k, _ in store.scan(b"b:")] == [b"b:1", b"b:2"]
    assert [k for k, _ in store.scan()] == [b"a:1", b"b:1", b"b:2", b"c:9"]


def test_memory_cap_raises_oom():
    store = MemKVStore(memory_cap_bytes=100)
    with pytest.raises(StorageError, match="out of memory"):
        for i in range(100):
            store.put(f"key-{i}".encode(), b"x" * 10)


def test_op_counters():
    store = MemKVStore()
    store.put(b"a", b"1")
    store.get(b"a")
    store.get(b"b")
    store.delete(b"a")
    assert store.write_ops == 2
    assert store.read_ops == 2
