"""merge_sorted_sources unit tests: the shadowing rule that makes LSM
overwrites and deletes correct across levels."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.lsm.compaction import merge_sorted_sources
from repro.storage.lsm.memtable import TOMBSTONE


def _merge(sources, drop_tombstones=False):
    return list(
        merge_sorted_sources([iter(s) for s in sources], drop_tombstones)
    )


def test_single_source_passthrough():
    rows = [(b"a", b"1"), (b"b", b"2")]
    assert _merge([rows]) == rows


def test_empty_sources():
    assert _merge([]) == []
    assert _merge([[], []]) == []


def test_disjoint_sources_interleave_in_key_order():
    newest = [(b"a", b"1"), (b"c", b"3")]
    oldest = [(b"b", b"2"), (b"d", b"4")]
    assert _merge([newest, oldest]) == [
        (b"a", b"1"), (b"b", b"2"), (b"c", b"3"), (b"d", b"4"),
    ]


def test_newest_source_wins_on_duplicate_key():
    newest = [(b"k", b"new")]
    oldest = [(b"k", b"old")]
    assert _merge([newest, oldest]) == [(b"k", b"new")]
    # Source order is the precedence order, not value content.
    assert _merge([oldest, newest]) == [(b"k", b"old")]


def test_three_way_duplicate_resolution():
    s0 = [(b"k", b"v0")]
    s1 = [(b"k", b"v1")]
    s2 = [(b"k", b"v2"), (b"z", b"zz")]
    assert _merge([s0, s1, s2]) == [(b"k", b"v0"), (b"z", b"zz")]


def test_tombstone_kept_when_not_bottom_level():
    """An intermediate compaction must keep the marker: an older level
    below could still hold the key."""
    newest = [(b"k", TOMBSTONE)]
    oldest = [(b"k", b"old")]
    assert _merge([newest, oldest], drop_tombstones=False) == [(b"k", TOMBSTONE)]


def test_tombstone_dropped_at_bottom_level():
    newest = [(b"k", TOMBSTONE)]
    oldest = [(b"k", b"old"), (b"live", b"x")]
    assert _merge([newest, oldest], drop_tombstones=True) == [(b"live", b"x")]


def test_tombstone_drop_does_not_resurrect_shadowed_value():
    """Dropping the marker must also drop every older version of the
    key, not fall through to them."""
    s0 = [(b"k", TOMBSTONE)]
    s1 = [(b"k", b"middle")]
    s2 = [(b"k", b"oldest")]
    assert _merge([s0, s1, s2], drop_tombstones=True) == []


@st.composite
def _layered_sources(draw):
    """Random key-ordered sources, newest first, over a small key space."""
    n_sources = draw(st.integers(min_value=1, max_value=4))
    keys = st.integers(min_value=0, max_value=15)
    sources = []
    for __ in range(n_sources):
        chosen = sorted(draw(st.sets(keys, max_size=10)))
        rows = []
        for k in chosen:
            is_delete = draw(st.booleans())
            value = TOMBSTONE if is_delete else f"v{k}".encode()
            rows.append((f"{k:04d}".encode(), value))
        sources.append(rows)
    return sources


@settings(max_examples=60, deadline=None)
@given(_layered_sources())
def test_merge_matches_dict_model(sources):
    """Merged output equals replaying sources oldest-to-newest into a
    dict, then listing surviving keys in order."""
    model: dict[bytes, bytes] = {}
    for source in reversed(sources):  # oldest first
        for key, value in source:
            model[key] = value
    expected_keep = sorted(model.items())
    expected_drop = sorted(
        (k, v) for k, v in model.items() if v != TOMBSTONE
    )
    assert _merge(sources, drop_tombstones=False) == expected_keep
    assert _merge(sources, drop_tombstones=True) == expected_drop


@settings(max_examples=30, deadline=None)
@given(_layered_sources())
def test_merge_output_is_key_sorted_and_unique(sources):
    out = _merge(sources)
    keys = [k for k, _ in out]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))
