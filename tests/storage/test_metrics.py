"""Unit tests for storage reporting."""

from repro.storage import LSMStore, MemKVStore, report_for


def test_report_for_memkv():
    store = MemKVStore()
    store.put(b"k", b"vvv")
    report = report_for(store, "parity-mem")
    assert report.backend == "parity-mem"
    assert report.live_bytes == 4
    assert report.disk_bytes == 0
    assert report.write_ops == 1


def test_report_for_lsm(tmp_path):
    db = LSMStore(tmp_path)
    db.put(b"k", b"v")
    db.flush()
    report = report_for(db, "leveldb")
    assert report.disk_bytes > 0
    assert report.flushes == 1
    db.close()


def test_write_amplification_zero_when_empty(tmp_path):
    db = LSMStore(tmp_path)
    report = report_for(db)
    assert report.write_amplification == 0.0
    db.close()
