"""Unit tests for the Bloom filter."""

import pytest

from repro.errors import CorruptionError
from repro.storage import BloomFilter


def test_added_keys_always_found():
    bloom = BloomFilter.for_capacity(1000)
    keys = [f"key-{i}".encode() for i in range(1000)]
    for key in keys:
        bloom.add(key)
    assert all(bloom.may_contain(key) for key in keys)


def test_false_positive_rate_reasonable():
    bloom = BloomFilter.for_capacity(1000, bits_per_key=10)
    for i in range(1000):
        bloom.add(f"key-{i}".encode())
    false_positives = sum(
        bloom.may_contain(f"other-{i}".encode()) for i in range(10_000)
    )
    assert false_positives < 500  # expect ~1%, allow 5%


def test_serialization_roundtrip():
    bloom = BloomFilter.for_capacity(50)
    bloom.add(b"alpha")
    restored = BloomFilter.from_bytes(bloom.to_bytes())
    assert restored.may_contain(b"alpha")
    assert restored.n_bits == bloom.n_bits
    assert restored.n_hashes == bloom.n_hashes


def test_bad_magic_rejected():
    with pytest.raises(CorruptionError):
        BloomFilter.from_bytes(b"XXXX" + b"\x00" * 16)


def test_truncated_payload_rejected():
    blob = BloomFilter.for_capacity(100).to_bytes()
    with pytest.raises(CorruptionError):
        BloomFilter.from_bytes(blob[:-3])


def test_invalid_sizing_rejected():
    with pytest.raises(CorruptionError):
        BloomFilter(0, 1)
    with pytest.raises(CorruptionError):
        BloomFilter(64, 0)


def test_empty_filter_contains_nothing():
    bloom = BloomFilter.for_capacity(10)
    assert not bloom.may_contain(b"anything")
