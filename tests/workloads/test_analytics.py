"""Correctness tests for the analytics workload (Q1/Q2 vs ground truth)."""

import pytest

from repro.platforms import build_cluster
from repro.workloads import preload_history, run_q1, run_q2

N_BLOCKS = 60


@pytest.fixture(params=["ethereum", "parity", "hyperledger", "erisdb"])
def loaded(request):
    cluster = build_cluster(request.param, 2, seed=23)
    preload = preload_history(
        cluster, n_blocks=N_BLOCKS, txs_per_block=3, n_accounts=30, seed=5
    )
    yield cluster, preload
    cluster.close()


def test_preload_installs_history(loaded):
    cluster, preload = loaded
    assert cluster.chain_height() == N_BLOCKS
    assert len(preload.transfers) == N_BLOCKS * 3
    # All nodes carry identical chains.
    tips = {node.chain().tip.hash for node in cluster.nodes}
    assert len(tips) == 1


def test_q1_exact_answer(loaded):
    cluster, preload = loaded
    result = run_q1(cluster, 10, 40)
    assert result.answer == preload.q1_reference(10, 40)
    assert result.rpc_count == 30
    assert result.latency_s > 0


def test_q1_empty_range(loaded):
    cluster, preload = loaded
    result = run_q1(cluster, 20, 20)
    assert result.answer == 0
    assert result.rpc_count == 0


def test_q2_exact_answer(loaded):
    cluster, preload = loaded
    # Pick an account that actually appears in the range.
    account = preload.transfers[len(preload.transfers) // 2][1]
    result = run_q2(cluster, account, 5, 55)
    if cluster.platform == "hyperledger":
        expected = preload.q2_reference_hyperledger(account, 5, 55)
        assert result.rpc_count == 1
    else:
        expected = preload.q2_reference_ethereum(account, 5, 55)
        assert result.rpc_count == 51
    assert result.answer == expected
    assert result.answer > 0


def test_q2_rpc_count_shape(loaded):
    """The paper's Figure 13b mechanism: RPC counts differ by design."""
    cluster, preload = loaded
    account = preload.account_names[0]
    result = run_q2(cluster, account, 30, 50)
    if cluster.platform == "hyperledger":
        assert result.rpc_count == 1
    else:
        assert result.rpc_count == 21


def test_q2_latency_scales_with_blocks_on_ethereum():
    cluster = build_cluster("ethereum", 2, seed=23)
    preload = preload_history(
        cluster, n_blocks=N_BLOCKS, txs_per_block=3, n_accounts=30, seed=5
    )
    account = preload.account_names[0]
    small = run_q2(cluster, account, 50, 55, tag="s")
    large = run_q2(cluster, account, 5, 55, tag="l")
    assert large.latency_s > 3 * small.latency_s
    cluster.close()


def test_q2_latency_constant_on_hyperledger():
    cluster = build_cluster("hyperledger", 2, seed=23)
    preload = preload_history(
        cluster, n_blocks=N_BLOCKS, txs_per_block=3, n_accounts=30, seed=5
    )
    account = preload.account_names[0]
    small = run_q2(cluster, account, 50, 55, tag="s")
    large = run_q2(cluster, account, 5, 55, tag="l")
    # One chaincode query either way: latency within a small factor.
    assert large.latency_s < 3 * small.latency_s
    cluster.close()
