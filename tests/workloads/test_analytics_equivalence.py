"""Analytics Q1/Q2: the coroutine clients vs the v1 callback chains.

The reference implementations below are the pre-redesign callback
clients, verbatim, running through the compat ``on_reply`` signatures
of the v2 connector. The coroutine rewrites must return the same
answer, the same RPC count, and the same latency — the paper's Figure
13a/13b numbers may not move because the client API changed.
"""

import pytest

from repro.core.connector import RPCClient, SimChainConnector
from repro.contracts.base import decode_int
from repro.errors import BenchmarkError
from repro.platforms import build_cluster
from repro.workloads import preload_history, run_q1, run_q2
from repro.workloads.analytics import QueryResult

N_BLOCKS = 120
SCAN_FROM = 20


# ---------------------------------------------------------------------------
# v1 reference: the callback-chain client (pre-redesign, via compat API)
# ---------------------------------------------------------------------------
class _CallbackQuery:
    def __init__(self, cluster, client_name):
        self.cluster = cluster
        self.scheduler = cluster.scheduler
        self.client = RPCClient(client_name, cluster.scheduler, cluster.network)
        self.connector = SimChainConnector(
            cluster, self.client, cluster.node_ids()[0]
        )
        self.rpc_count = 0
        self.finished_at = None
        self.answer = 0

    def run(self):
        started_at = self.scheduler.now
        self._next()
        while self.finished_at is None:
            if not self.scheduler.step():
                raise BenchmarkError("query never completed")
        return QueryResult(
            latency_s=self.finished_at - started_at,
            rpc_count=self.rpc_count,
            answer=self.answer,
        )

    def _finish(self, answer):
        self.answer = answer
        self.finished_at = self.scheduler.now


class _CallbackQ1(_CallbackQuery):
    def __init__(self, cluster, start_block, end_block):
        super().__init__(cluster, "q1-ref")
        self.heights = list(range(start_block + 1, end_block + 1))
        self.total = 0

    def _next(self):
        if not self.heights:
            self._finish(self.total)
            return
        height = self.heights.pop(0)
        self.rpc_count += 1

        def on_reply(reply):
            self.total += sum(tx["value"] for tx in reply.get("txs", []))
            self._next()

        self.connector.get_block_transactions(height, on_reply)


class _CallbackQ2Ethereum(_CallbackQuery):
    def __init__(self, cluster, account, start_block, end_block):
        super().__init__(cluster, "q2-ref")
        self.account = account
        self.heights = list(range(start_block, end_block + 1))
        self.previous = None
        self.largest = 0

    def _next(self):
        if not self.heights:
            self._finish(self.largest)
            return
        height = self.heights.pop(0)
        self.rpc_count += 1

        def on_reply(reply):
            balance = decode_int(reply.get("value"))
            if self.previous is not None:
                self.largest = max(self.largest, abs(balance - self.previous))
            self.previous = balance
            self._next()

        self.connector.get_balance(
            "smallbank", b"chk:" + self.account.encode(), height, on_reply
        )


class _CallbackQ2Hyperledger(_CallbackQuery):
    def __init__(self, cluster, account, start_block, end_block):
        super().__init__(cluster, "q2-ref")
        self.account = account
        self.start_block = start_block
        self.end_block = end_block

    def _next(self):
        self.rpc_count += 1

        def on_reply(reply):
            versions = reply.get("output") or []
            largest = 0
            previous = None
            for record in reversed(versions):
                if previous is not None:
                    largest = max(largest, abs(record["balance"] - previous))
                previous = record["balance"]
            self._finish(largest)

        self.connector.query(
            "versionkv",
            "account_block_range",
            (self.account, self.start_block, self.end_block + 1),
            on_reply,
        )


# ---------------------------------------------------------------------------
# Fixtures: one preloaded cluster per platform per test
# ---------------------------------------------------------------------------
def _make(platform):
    cluster = build_cluster(platform, 2, seed=11)
    preload = preload_history(
        cluster, n_blocks=N_BLOCKS, txs_per_block=3, n_accounts=60
    )
    return cluster, preload


# ---------------------------------------------------------------------------
# Equivalence: coroutine client == callback client, to the bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("platform", ["ethereum", "hyperledger"])
def test_q1_matches_callback_reference(platform):
    cluster, _ = _make(platform)
    reference = _CallbackQ1(cluster, SCAN_FROM, N_BLOCKS).run()
    cluster.close()

    cluster, _ = _make(platform)
    coroutine = run_q1(cluster, SCAN_FROM, N_BLOCKS)
    cluster.close()

    assert coroutine == reference  # answer, rpc_count, AND latency


@pytest.mark.parametrize("platform", ["ethereum", "hyperledger"])
def test_q2_matches_callback_reference(platform):
    cluster, preload = _make(platform)
    account = preload.account_names[0]
    if platform == "hyperledger":
        reference = _CallbackQ2Hyperledger(
            cluster, account, SCAN_FROM, N_BLOCKS
        ).run()
    else:
        reference = _CallbackQ2Ethereum(
            cluster, account, SCAN_FROM, N_BLOCKS
        ).run()
    cluster.close()

    cluster, preload = _make(platform)
    coroutine = run_q2(cluster, account, SCAN_FROM, N_BLOCKS)
    cluster.close()

    assert coroutine == reference


# ---------------------------------------------------------------------------
# Answers still match ground truth, and the window only pipelines
# ---------------------------------------------------------------------------
def test_q1_q2_against_ground_truth():
    cluster, preload = _make("ethereum")
    account = preload.account_names[0]
    q1 = run_q1(cluster, SCAN_FROM, N_BLOCKS)
    q2 = run_q2(cluster, account, SCAN_FROM, N_BLOCKS)
    assert q1.answer == preload.q1_reference(SCAN_FROM, N_BLOCKS)
    assert q2.answer == preload.q2_reference_ethereum(
        account, SCAN_FROM, N_BLOCKS
    )
    cluster.close()


def test_window_pipelines_without_changing_answer_or_rpc_count():
    cluster, preload = _make("ethereum")
    account = preload.account_names[0]
    sequential = run_q2(cluster, account, SCAN_FROM, N_BLOCKS, tag="-w1")
    windowed = run_q2(cluster, account, SCAN_FROM, N_BLOCKS, tag="-w8", window=8)
    cluster.close()
    assert windowed.answer == sequential.answer
    assert windowed.rpc_count == sequential.rpc_count
    # Overlapping round trips can only make the scan faster.
    assert windowed.latency_s < sequential.latency_s


def test_window_must_be_positive():
    cluster, _ = _make("ethereum")
    with pytest.raises(BenchmarkError):
        run_q1(cluster, SCAN_FROM, N_BLOCKS, window=0)
    cluster.close()
