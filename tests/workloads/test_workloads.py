"""Unit tests for workload generators."""

import random

import pytest

from repro.errors import BenchmarkError
from repro.workloads import (
    DoNothingWorkload,
    DoublerWorkload,
    EtherIdWorkload,
    SmallbankWorkload,
    WavesPresaleWorkload,
    YCSBConfig,
    YCSBWorkload,
    ZipfianGenerator,
    make_workload,
)


@pytest.fixture
def rng():
    return random.Random(17)


def test_make_workload_by_name():
    assert make_workload("ycsb").name == "ycsb"
    assert make_workload("smallbank").name == "smallbank"
    with pytest.raises(BenchmarkError):
        make_workload("tpcc")


def test_make_workload_with_params():
    workload = make_workload("ycsb", record_count=10, read_proportion=1.0,
                             update_proportion=0.0)
    assert workload.config.record_count == 10


def test_zipfian_skews_to_head(rng):
    gen = ZipfianGenerator(1000)
    draws = [gen.next(rng) for _ in range(5000)]
    head = sum(1 for d in draws if d < 100)
    assert head > len(draws) * 0.5  # hot head
    assert all(0 <= d < 1000 for d in draws)


def test_zipfian_rejects_empty():
    with pytest.raises(BenchmarkError):
        ZipfianGenerator(0)


def test_ycsb_proportions_validated():
    with pytest.raises(BenchmarkError):
        YCSBConfig(read_proportion=0.9, update_proportion=0.9).validate()
    with pytest.raises(BenchmarkError):
        YCSBConfig(distribution="gaussian").validate()


def test_ycsb_generates_reads_and_writes(rng):
    workload = YCSBWorkload(YCSBConfig(record_count=100))
    functions = {
        workload.next_transaction("c0", rng, 0.0).function for _ in range(200)
    }
    assert functions == {"read", "write"}


def test_ycsb_inserts_use_fresh_keys(rng):
    workload = YCSBWorkload(
        YCSBConfig(
            record_count=10,
            read_proportion=0.0,
            update_proportion=0.0,
            insert_proportion=1.0,
        )
    )
    keys = [
        workload.next_transaction("c0", rng, 0.0).args[0] for _ in range(20)
    ]
    assert len(set(keys)) == 20
    assert keys[0] == "user10"  # first insert goes past the preload


def test_ycsb_uniform_distribution(rng):
    workload = YCSBWorkload(
        YCSBConfig(record_count=50, distribution="uniform")
    )
    txs = [workload.next_transaction("c0", rng, 0.0) for _ in range(100)]
    assert all(tx.contract == "kvstore" for tx in txs)


def test_smallbank_operations_cover_mix(rng):
    workload = SmallbankWorkload()
    functions = {
        workload.next_transaction("c0", rng, 0.0).function for _ in range(500)
    }
    assert functions == {
        "transact_savings",
        "deposit_checking",
        "send_payment",
        "write_check",
        "amalgamate",
        "balance",
    }


def test_smallbank_payment_args_distinct_accounts(rng):
    workload = SmallbankWorkload()
    for _ in range(300):
        tx = workload.next_transaction("c0", rng, 0.0)
        if tx.function == "send_payment":
            assert tx.args[0] != tx.args[1]
            assert tx.value == tx.args[2]


def test_etherid_mix(rng):
    workload = EtherIdWorkload()
    functions = {
        workload.next_transaction("c0", rng, 1.0).function for _ in range(300)
    }
    assert functions == {"register", "set_value", "buy", "lookup"}


def test_etherid_registrations_unique(rng):
    workload = EtherIdWorkload()
    domains = set()
    for _ in range(300):
        tx = workload.next_transaction("c0", rng, 1.0)
        if tx.function == "register":
            assert tx.args[0] not in domains
            domains.add(tx.args[0])


def test_doubler_entries_have_value(rng):
    workload = DoublerWorkload()
    tx = workload.next_transaction("c0", rng, 0.0)
    assert tx.function == "enter"
    assert tx.value > 0


def test_wavespresale_transfers_by_owner(rng):
    workload = WavesPresaleWorkload()
    owners = {}
    for _ in range(300):
        tx = workload.next_transaction("c0", rng, 0.0)
        if tx.function == "new_sale":
            owners[0] = tx.sender
        elif tx.function == "transfer_sale":
            # Transfer is always issued by the recorded current owner.
            assert tx.sender.startswith("c0-buyer")


def test_donothing_generates_nops(rng):
    workload = DoNothingWorkload()
    tx = workload.next_transaction("c0", rng, 0.0)
    assert (tx.contract, tx.function) == ("donothing", "nop")
