"""Unit tests for every Table-1 contract."""

import pytest

from repro.contracts import (
    DictState,
    DoublerContract,
    EtherIdContract,
    KVStoreContract,
    SmallbankContract,
    TxContext,
    VersionKVStoreContract,
    WavesPresaleContract,
    available_contracts,
    create_contract,
)
from repro.contracts.micro import CPUHeavyContract, DoNothingContract, IOHeavyContract
from repro.errors import ContractRevert


@pytest.fixture
def state():
    return DictState()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_lists_all_table1_contracts():
    names = available_contracts()
    assert names == sorted(
        [
            "kvstore",
            "smallbank",
            "etherid",
            "doubler",
            "wavespresale",
            "versionkv",
            "ioheavy",
            "cpuheavy",
            "donothing",
        ]
    )


def test_registry_creates_instances():
    assert isinstance(create_contract("kvstore"), KVStoreContract)


def test_registry_unknown_contract():
    with pytest.raises(ContractRevert):
        create_contract("bogus")


def test_unknown_function_reverts(state):
    with pytest.raises(ContractRevert):
        KVStoreContract().invoke(state, "explode", ())


# ---------------------------------------------------------------------------
# KVStore
# ---------------------------------------------------------------------------
def test_kvstore_write_read_delete(state):
    kv = KVStoreContract()
    kv.invoke(state, "write", ("user1", "payload"))
    assert kv.invoke(state, "read", ("user1",)).output == "payload"
    kv.invoke(state, "delete", ("user1",))
    assert kv.invoke(state, "read", ("user1",)).output is None


def test_kvstore_rmw_requires_existing(state):
    kv = KVStoreContract()
    with pytest.raises(ContractRevert):
        kv.invoke(state, "read_modify_write", ("missing", "v"))
    kv.invoke(state, "write", ("k", "v1"))
    kv.invoke(state, "read_modify_write", ("k", "v2"))
    assert kv.invoke(state, "read", ("k",)).output == "v2"


def test_kvstore_gas_write_exceeds_read(state):
    kv = KVStoreContract()
    write_gas = kv.invoke(state, "write", ("k", "v")).gas_used
    read_gas = kv.invoke(state, "read", ("k",)).gas_used
    assert write_gas > read_gas


# ---------------------------------------------------------------------------
# Smallbank
# ---------------------------------------------------------------------------
@pytest.fixture
def bank_state(state):
    bank = SmallbankContract()
    bank.invoke(state, "create_account", ("alice", 100, 50))
    bank.invoke(state, "create_account", ("bob", 0, 10))
    return state


def test_smallbank_balance(bank_state):
    bank = SmallbankContract()
    assert bank.invoke(bank_state, "balance", ("alice",)).output == 150


def test_smallbank_deposit_checking(bank_state):
    bank = SmallbankContract()
    assert bank.invoke(bank_state, "deposit_checking", ("bob", 5)).output == 15
    with pytest.raises(ContractRevert):
        bank.invoke(bank_state, "deposit_checking", ("bob", -1))


def test_smallbank_transact_savings_overdraft(bank_state):
    bank = SmallbankContract()
    assert bank.invoke(bank_state, "transact_savings", ("alice", -100)).output == 0
    with pytest.raises(ContractRevert):
        bank.invoke(bank_state, "transact_savings", ("alice", -1))


def test_smallbank_send_payment(bank_state):
    bank = SmallbankContract()
    bank.invoke(bank_state, "send_payment", ("alice", "bob", 30))
    assert bank.invoke(bank_state, "balance", ("bob",)).output == 40
    assert bank.invoke(bank_state, "balance", ("alice",)).output == 120
    with pytest.raises(ContractRevert):
        bank.invoke(bank_state, "send_payment", ("alice", "bob", 10_000))


def test_smallbank_money_conserved_by_payment(bank_state):
    bank = SmallbankContract()
    total_before = (
        bank.invoke(bank_state, "balance", ("alice",)).output
        + bank.invoke(bank_state, "balance", ("bob",)).output
    )
    bank.invoke(bank_state, "send_payment", ("alice", "bob", 17))
    total_after = (
        bank.invoke(bank_state, "balance", ("alice",)).output
        + bank.invoke(bank_state, "balance", ("bob",)).output
    )
    assert total_before == total_after


def test_smallbank_write_check_penalty(bank_state):
    bank = SmallbankContract()
    # alice total 150; check for 200 overdraws with a 1-unit penalty.
    checking = bank.invoke(bank_state, "write_check", ("alice", 200)).output
    assert checking == 50 - 200 - 1


def test_smallbank_amalgamate(bank_state):
    bank = SmallbankContract()
    bank.invoke(bank_state, "amalgamate", ("alice", "bob"))
    assert bank.invoke(bank_state, "balance", ("alice",)).output == 0
    assert bank.invoke(bank_state, "balance", ("bob",)).output == 160


def test_smallbank_more_expensive_than_ycsb(state):
    """The execution-layer cost gap behind Section 4.1.1's observation.

    Both workloads run against preloaded records (as the benchmarks
    do), so the comparison is update-vs-update, not insert-vs-update.
    """
    kv = KVStoreContract()
    kv.invoke(state, "write", ("k", "v0"))  # preload
    kv_gas = kv.invoke(state, "write", ("k", "v1")).gas_used
    bank = SmallbankContract()
    bank.invoke(state, "create_account", ("a", 10, 10))
    bank.invoke(state, "create_account", ("b", 10, 10))
    pay_gas = bank.invoke(state, "send_payment", ("a", "b", 1)).gas_used
    assert pay_gas > kv_gas


# ---------------------------------------------------------------------------
# EtherId
# ---------------------------------------------------------------------------
def test_etherid_register_and_lookup(state):
    reg = EtherIdContract()
    ctx = TxContext(sender="alice")
    reg.invoke(state, "register", ("nus.edu", "ip=1.2.3.4"), ctx)
    record = reg.invoke(state, "lookup", ("nus.edu",)).output
    assert record["owner"] == "alice"
    with pytest.raises(ContractRevert):
        reg.invoke(state, "register", ("nus.edu",), TxContext(sender="bob"))


def test_etherid_only_owner_modifies(state):
    reg = EtherIdContract()
    reg.invoke(state, "register", ("d.com",), TxContext(sender="alice"))
    with pytest.raises(ContractRevert):
        reg.invoke(state, "set_value", ("d.com", "x"), TxContext(sender="bob"))
    reg.invoke(state, "set_value", ("d.com", "x"), TxContext(sender="alice"))
    assert reg.invoke(state, "lookup", ("d.com",)).output["value"] == "x"


def test_etherid_paid_transfer(state):
    reg = EtherIdContract()
    alice, bob = TxContext(sender="alice"), TxContext(sender="bob")
    reg.invoke(state, "fund", ("bob", 100))
    reg.invoke(state, "register", ("d.com",), alice)
    reg.invoke(state, "set_price", ("d.com", 60), alice)
    reg.invoke(state, "buy", ("d.com",), bob)
    record = reg.invoke(state, "lookup", ("d.com",)).output
    assert record["owner"] == "bob"
    assert reg.invoke(state, "balance_of", ("bob",)).output == 40
    assert reg.invoke(state, "balance_of", ("alice",)).output == 60


def test_etherid_buy_requires_funds_and_sale(state):
    reg = EtherIdContract()
    reg.invoke(state, "register", ("d.com",), TxContext(sender="alice"))
    with pytest.raises(ContractRevert, match="not for sale"):
        reg.invoke(state, "buy", ("d.com",), TxContext(sender="bob"))
    reg.invoke(state, "set_price", ("d.com", 60), TxContext(sender="alice"))
    with pytest.raises(ContractRevert, match="insufficient"):
        reg.invoke(state, "buy", ("d.com",), TxContext(sender="bob"))


# ---------------------------------------------------------------------------
# Doubler
# ---------------------------------------------------------------------------
def test_doubler_pays_early_participants(state):
    doubler = DoublerContract()
    doubler.invoke(state, "enter", (), TxContext(sender="p0", value=100))
    paid = doubler.invoke(state, "enter", (), TxContext(sender="p1", value=150)).output
    # Pot = 250 >= 2*100: p0 paid out.
    assert paid == ["p0"]
    assert doubler.invoke(state, "payout_of", ("p0",)).output == 200
    assert doubler.invoke(state, "pot_balance", ()).output == 50


def test_doubler_requires_positive_value(state):
    with pytest.raises(ContractRevert):
        DoublerContract().invoke(state, "enter", (), TxContext(sender="p", value=0))


def test_doubler_participant_count(state):
    doubler = DoublerContract()
    for i in range(5):
        doubler.invoke(state, "enter", (), TxContext(sender=f"p{i}", value=10))
    assert doubler.invoke(state, "participant_count", ()).output == 5


def test_doubler_is_a_ponzi(state):
    """Later participants cannot all be made whole — the defining flaw."""
    doubler = DoublerContract()
    for i in range(10):
        doubler.invoke(state, "enter", (), TxContext(sender=f"p{i}", value=100))
    paid = sum(
        doubler.invoke(state, "payout_of", (f"p{i}",)).output for i in range(10)
    )
    pot = doubler.invoke(state, "pot_balance", ()).output
    assert paid + pot == 1000  # money conserved
    assert doubler.invoke(state, "payout_of", ("p9",)).output == 0  # last one loses


# ---------------------------------------------------------------------------
# WavesPresale
# ---------------------------------------------------------------------------
def test_presale_records_and_totals(state):
    presale = WavesPresaleContract()
    sid = presale.invoke(state, "new_sale", (500,), TxContext(sender="a")).output
    presale.invoke(state, "new_sale", (250,), TxContext(sender="b"))
    assert presale.invoke(state, "total_tokens", ()).output == 750
    assert presale.invoke(state, "sale_count", ()).output == 2
    assert presale.invoke(state, "get_sale", (sid,)).output["buyer"] == "a"


def test_presale_transfer_ownership(state):
    presale = WavesPresaleContract()
    sid = presale.invoke(state, "new_sale", (10,), TxContext(sender="a")).output
    with pytest.raises(ContractRevert):
        presale.invoke(state, "transfer_sale", (sid, "c"), TxContext(sender="b"))
    presale.invoke(state, "transfer_sale", (sid, "c"), TxContext(sender="a"))
    assert presale.invoke(state, "get_sale", (sid,)).output["buyer"] == "c"


def test_presale_rejects_nonpositive(state):
    with pytest.raises(ContractRevert):
        WavesPresaleContract().invoke(state, "new_sale", (0,), TxContext(sender="a"))


def test_presale_unknown_sale(state):
    presale = WavesPresaleContract()
    assert presale.invoke(state, "get_sale", (99,)).output is None
    with pytest.raises(ContractRevert):
        presale.invoke(state, "transfer_sale", (99, "x"), TxContext(sender="a"))


# ---------------------------------------------------------------------------
# VersionKVStore (Figure 20)
# ---------------------------------------------------------------------------
def test_versionkv_send_value_and_balances(state):
    vkv = VersionKVStoreContract()
    ctx = TxContext(sender="s", block_height=5)
    vkv.invoke(state, "send_value", ("acc1", "acc2", 30), ctx)
    assert vkv.invoke(state, "balance_of", ("acc1",)).output == -30
    assert vkv.invoke(state, "balance_of", ("acc2",)).output == 30


def test_versionkv_block_txn_list(state):
    vkv = VersionKVStoreContract()
    vkv.invoke(state, "send_value", ("a", "b", 1), TxContext(block_height=3))
    vkv.invoke(state, "send_value", ("c", "d", 2), TxContext(block_height=3))
    txns = vkv.invoke(state, "block_txn_list", (3,)).output
    assert [t["val"] for t in txns] == [1, 2]
    assert vkv.invoke(state, "block_txn_list", (9,)).output == []


def test_versionkv_account_block_range(state):
    vkv = VersionKVStoreContract()
    for height, amount in [(1, 10), (3, 20), (5, 30), (9, 40)]:
        vkv.invoke(
            state, "send_value", ("x", "acc", amount), TxContext(block_height=height)
        )
    versions = vkv.invoke(state, "account_block_range", ("acc", 3, 9)).output
    # Versions committed at blocks 3 and 5 (range is [start, end)).
    assert [v["commit_block"] for v in versions] == [5, 3]
    assert [v["balance"] for v in versions] == [60, 30]


def test_versionkv_rejects_negative(state):
    with pytest.raises(ContractRevert):
        VersionKVStoreContract().invoke(
            state, "send_value", ("a", "b", -5), TxContext()
        )


# ---------------------------------------------------------------------------
# Micro contracts
# ---------------------------------------------------------------------------
def test_ioheavy_write_read(state):
    io = IOHeavyContract()
    assert io.invoke(state, "write_batch", (0, 100)).output == 100
    assert io.invoke(state, "read_batch", (0, 100)).output == 100
    assert io.invoke(state, "read_batch", (100, 50)).output == 0
    assert io.invoke(state, "scan_verify", (0, 100)).output is True


def test_ioheavy_gas_scales_with_batch(state):
    io = IOHeavyContract()
    small = io.invoke(state, "write_batch", (0, 10)).gas_used
    big = io.invoke(state, "write_batch", (1000, 100)).gas_used
    assert big > small * 5


def test_cpuheavy_sorts(state):
    cpu = CPUHeavyContract()
    result = cpu.invoke(state, "sort", (1000,))
    assert result.output == 1
    assert result.gas_used > 100_000


def test_cpuheavy_rejects_zero(state):
    with pytest.raises(ContractRevert):
        CPUHeavyContract().invoke(state, "sort", (0,))


def test_donothing_minimal_gas(state):
    result = DoNothingContract().invoke(state, "nop", ())
    assert result.output is True
    assert result.reads == 0
    assert result.writes == 0


def test_gas_ordering_across_contracts(state):
    """DoNothing < YCSB update < Smallbank payment (Figure 13c's premise)."""
    nop = DoNothingContract().invoke(state, "nop", ()).gas_used
    kv = KVStoreContract()
    kv.invoke(state, "write", ("k", "v0"))  # preload
    write = kv.invoke(state, "write", ("k", "v1")).gas_used
    bank = SmallbankContract()
    bank.invoke(state, "create_account", ("a", 10, 10))
    bank.invoke(state, "create_account", ("b", 10, 10))
    pay = bank.invoke(state, "send_payment", ("a", "b", 1)).gas_used
    assert nop < write < pay
