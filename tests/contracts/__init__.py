"""Tests for the contracts layer."""
