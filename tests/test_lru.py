"""Unit tests for the LRU cache."""

import pytest

from repro.util.lru import LRUCache


def test_basic_get_put():
    cache = LRUCache(2)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("b") is None


def test_eviction_order():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a
    cache.put("c", 3)  # evicts b
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3


def test_overwrite_refreshes():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    cache.put("c", 3)  # evicts b, not a
    assert cache.get("a") == 10
    assert cache.get("b") is None


def test_hit_rate():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate() == 0.5


def test_hit_rate_empty():
    assert LRUCache(1).hit_rate() == 0.0


def test_len_and_contains():
    cache = LRUCache(3)
    cache.put("a", 1)
    assert len(cache) == 1
    assert "a" in cache
    assert "b" not in cache


def test_invalid_capacity():
    with pytest.raises(ValueError):
        LRUCache(0)
