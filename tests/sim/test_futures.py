"""Unit tests for simulation-native futures and coroutines."""

import pytest

from repro.errors import SimulationError
from repro.sim import Scheduler, SimFuture, gather, spawn


# ---------------------------------------------------------------------------
# SimFuture semantics
# ---------------------------------------------------------------------------
def test_future_resolves_once():
    fut = SimFuture()
    assert not fut.done
    with pytest.raises(SimulationError):
        fut.result()
    fut.set_result(41)
    assert fut.done
    assert fut.result() == 41
    with pytest.raises(SimulationError):
        fut.set_result(42)


def test_future_callbacks_fire_inline_and_immediately_when_done():
    fut = SimFuture()
    seen = []
    fut.add_done_callback(lambda f: seen.append(("before", f.result())))
    fut.set_result("x")
    assert seen == [("before", "x")]
    fut.add_done_callback(lambda f: seen.append(("after", f.result())))
    assert seen == [("before", "x"), ("after", "x")]


def test_future_exception_propagates_via_result():
    fut = SimFuture()
    consumed = []
    fut.add_done_callback(lambda f: consumed.append(f.exception()))
    fut.set_exception(ValueError("boom"))
    assert isinstance(consumed[0], ValueError)
    with pytest.raises(ValueError):
        fut.result()


# ---------------------------------------------------------------------------
# spawn: the coroutine trampoline
# ---------------------------------------------------------------------------
def test_spawn_runs_inline_until_first_pending_future():
    steps = []
    fut = SimFuture()

    def coro():
        steps.append("start")
        value = yield fut
        steps.append(value)
        return "done"

    out = spawn(coro())
    assert steps == ["start"]  # advanced inline to the first yield
    assert not out.done
    fut.set_result("reply")
    assert steps == ["start", "reply"]  # resumed inline at resolution
    assert out.done and out.result() == "done"


def test_spawn_yielding_resolved_futures_is_iterative_not_recursive():
    # A long chain of already-resolved futures must not grow the stack.
    def coro():
        total = 0
        for i in range(50_000):
            fut = SimFuture()
            fut.set_result(i)
            total += yield fut
        return total

    out = spawn(coro())
    assert out.result() == sum(range(50_000))


def test_spawn_nested_generators_run_in_place():
    def inner(x):
        fut = SimFuture()
        fut.set_result(x * 2)
        doubled = yield fut
        return doubled + 1

    def outer():
        a = yield inner(10)
        b = yield inner(a)
        return b

    assert spawn(outer()).result() == 43


def test_spawn_delivers_nested_exception_at_yield_site():
    def inner():
        raise RuntimeError("inner blew up")
        yield  # pragma: no cover - makes it a generator

    def outer():
        try:
            yield inner()
        except RuntimeError as exc:
            return f"caught: {exc}"

    assert spawn(outer()).result() == "caught: inner blew up"


def test_spawn_strict_raises_unobserved_exceptions():
    def coro():
        raise RuntimeError("nobody is watching")
        yield  # pragma: no cover

    with pytest.raises(RuntimeError):
        spawn(coro())


def test_spawn_rejects_non_awaitable_yields():
    def coro():
        yield 42

    with pytest.raises(SimulationError):
        spawn(coro())


def test_spawn_return_value_none_by_default():
    def coro():
        yield_done = SimFuture()
        yield_done.set_result(None)
        yield yield_done

    assert spawn(coro()).result() is None


# ---------------------------------------------------------------------------
# Scheduler integration: sleep and determinism
# ---------------------------------------------------------------------------
def test_scheduler_sleep_resolves_at_the_right_time():
    sched = Scheduler()
    times = []

    def coro():
        yield sched.sleep(1.5)
        times.append(sched.now)
        yield sched.sleep(0.5)
        times.append(sched.now)
        return "finished"

    out = sched.spawn(coro())
    sched.run()
    assert times == [1.5, 2.0]
    assert out.result() == "finished"


def test_sleep_costs_exactly_one_heap_event():
    sched = Scheduler()

    def coro():
        yield sched.sleep(1.0)

    sched.spawn(coro())
    assert sched.pending() == 1
    sched.run()
    assert sched.events_processed == 1


def test_coroutines_interleave_deterministically_with_callbacks():
    """Coroutine wake-ups obey the same (time, seq) order as callbacks."""
    def run_once():
        sched = Scheduler()
        order = []

        def coro():
            order.append(("coro", sched.now))
            yield sched.sleep(1.0)
            order.append(("coro", sched.now))

        sched.schedule(1.0, lambda: order.append(("cb-early", sched.now)))
        sched.spawn(coro())  # its sleep(1.0) is scheduled after cb-early
        sched.schedule(1.0, lambda: order.append(("cb-late", sched.now)))
        sched.run()
        return order

    first, second = run_once(), run_once()
    assert first == second
    assert first == [
        ("coro", 0.0),
        ("cb-early", 1.0),
        ("coro", 1.0),
        ("cb-late", 1.0),
    ]


# ---------------------------------------------------------------------------
# gather
# ---------------------------------------------------------------------------
def test_gather_preserves_input_order():
    futs = [SimFuture() for _ in range(3)]
    out = gather(futs)
    futs[2].set_result("c")
    futs[0].set_result("a")
    assert not out.done
    futs[1].set_result("b")
    assert out.result() == ["a", "b", "c"]


def test_gather_empty_resolves_immediately():
    assert gather([]).result() == []


def test_gather_fails_fast_on_first_error():
    futs = [SimFuture() for _ in range(3)]
    out = gather(futs)
    out.add_done_callback(lambda f: None)  # observe, so nothing re-raises
    futs[1].set_exception(ValueError("bad"))
    assert out.done
    with pytest.raises(ValueError):
        out.result()
    # Late sibling results are discarded without error.
    futs[0].set_result("a")
    futs[2].set_result("c")


def test_gather_inside_coroutine():
    sched = Scheduler()

    def coro():
        values = yield gather([sched.sleep(2.0), sched.sleep(1.0)])
        return (values, sched.now)

    out = sched.spawn(coro())
    sched.run()
    values, finished_at = out.result()
    assert values == [None, None]
    assert finished_at == 2.0  # waits for the slowest
