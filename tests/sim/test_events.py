"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import NEVER, Scheduler


def test_events_fire_in_time_order():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, fired.append, "c")
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(2.0, fired.append, "b")
    sched.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sched = Scheduler()
    fired = []
    for name in "abcde":
        sched.schedule(1.0, fired.append, name)
    sched.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sched = Scheduler()
    seen = []
    sched.schedule(2.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [2.5]
    assert sched.now == 2.5


def test_cancelled_events_do_not_fire():
    sched = Scheduler()
    fired = []
    event = sched.schedule(1.0, fired.append, "x")
    sched.schedule(2.0, fired.append, "y")
    event.cancel()
    sched.run()
    assert fired == ["y"]


def test_run_until_stops_at_deadline_and_advances_clock():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(5.0, fired.append, "late")
    sched.run_until(3.0)
    assert fired == ["early"]
    assert sched.now == 3.0
    sched.run_until(10.0)
    assert fired == ["early", "late"]


def test_run_until_includes_events_exactly_at_deadline():
    sched = Scheduler()
    fired = []
    sched.schedule(3.0, fired.append, "edge")
    sched.run_until(3.0)
    assert fired == ["edge"]


def test_nested_scheduling_during_execution():
    sched = Scheduler()
    fired = []

    def outer():
        fired.append("outer")
        sched.schedule(1.0, fired.append, "inner")

    sched.schedule(1.0, outer)
    sched.run()
    assert fired == ["outer", "inner"]
    assert sched.now == 2.0


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sched = Scheduler()
    sched.schedule(5.0, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.schedule_at(1.0, lambda: None)


def test_run_until_backwards_rejected():
    sched = Scheduler()
    sched.run_until(5.0)
    with pytest.raises(SimulationError):
        sched.run_until(1.0)


def test_peek_time_empty_queue():
    sched = Scheduler()
    assert sched.peek_time() == NEVER


def test_peek_time_skips_cancelled():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    assert sched.peek_time() == 2.0


def test_pending_counts_live_events():
    sched = Scheduler()
    e1 = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    assert sched.pending() == 2
    e1.cancel()
    assert sched.pending() == 1


def test_run_max_events():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.schedule(float(i + 1), fired.append, i)
    sched.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_processed_counter():
    sched = Scheduler()
    for i in range(5):
        sched.schedule(float(i), lambda: None)
    sched.run()
    assert sched.events_processed == 5


def test_pending_counter_tracks_schedule_fire_cancel():
    sched = Scheduler()
    events = [sched.schedule(float(i + 1), lambda: None) for i in range(4)]
    assert sched.pending() == 4
    events[0].cancel()
    assert sched.pending() == 3
    sched.step()  # fires the event at t=2 (t=1 was cancelled)
    assert sched.pending() == 2
    sched.run()
    assert sched.pending() == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    sched = Scheduler()
    fired = sched.schedule(1.0, lambda: None)
    keeper = sched.schedule(2.0, lambda: None)
    sched.step()
    assert sched.pending() == 1
    fired.cancel()  # no-op: already fired
    fired.cancel()
    assert sched.pending() == 1
    keeper.cancel()
    assert sched.pending() == 0


def test_double_cancel_decrements_once():
    sched = Scheduler()
    event = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sched.pending() == 1


def test_mass_cancellation_compacts_heap_and_keeps_order():
    sched = Scheduler()
    fired = []
    keepers = []
    for i in range(500):
        event = sched.schedule(float(i), fired.append, i)
        if i % 10 == 0:
            keepers.append(i)
        else:
            event.cancel()
    # Lazy compaction kicked in: tombstones no longer dominate the heap.
    assert sched.pending() == len(keepers)
    assert len(sched._queue) < 500
    sched.run()
    assert fired == keepers
    assert sched.pending() == 0
