"""Unit tests for the resource monitor (Figure 16 substrate)."""

from repro.sim import Network, ResourceMonitor, RngRegistry, Scheduler, SimNode


class BusyNode(SimNode):
    def message_cost(self, message):
        return 0.4


def test_cpu_utilization_sampled():
    sched = Scheduler()
    net = Network(sched, RngRegistry(1), jitter=0.0)
    src = SimNode("src", sched, net)
    busy = BusyNode("busy", sched, net)
    monitor = ResourceMonitor(sched, net, [busy], interval=1.0, cores=1)
    monitor.start()

    def feed():
        src.send("busy", "work", None)
        sched.schedule(0.4, feed)

    sched.schedule(0.0, feed)
    sched.run_until(10.0)
    monitor.stop()
    series = monitor.series["busy"]
    assert len(series.samples) >= 9
    # Node is ~100% busy with 0.4s jobs arriving every 0.4s.
    assert series.mean_cpu_pct() > 60.0


def test_network_mbps_sampled():
    sched = Scheduler()
    net = Network(sched, RngRegistry(1), jitter=0.0)
    a = SimNode("a", sched, net)
    b = SimNode("b", sched, net)
    monitor = ResourceMonitor(sched, net, [a, b], interval=1.0)
    monitor.start()

    def feed():
        a.send("b", "data", None, size_bytes=125_000)  # 1 Mbit
        sched.schedule(1.0, feed)

    sched.schedule(0.0, feed)
    sched.run_until(10.0)
    assert monitor.series["b"].mean_net_mbps() > 0.5


def test_idle_node_reports_zero():
    sched = Scheduler()
    net = Network(sched, RngRegistry(1))
    idle = SimNode("idle", sched, net)
    monitor = ResourceMonitor(sched, net, [idle], interval=1.0)
    monitor.start()
    sched.schedule(5.0, lambda: None)
    sched.run_until(5.0)
    assert monitor.series["idle"].mean_cpu_pct() == 0.0
    assert monitor.series["idle"].mean_net_mbps() == 0.0


def test_stop_halts_sampling():
    sched = Scheduler()
    net = Network(sched, RngRegistry(1))
    node = SimNode("n", sched, net)
    monitor = ResourceMonitor(sched, net, [node], interval=1.0)
    monitor.start()
    sched.run_until(3.0)
    count = len(monitor.series["n"].samples)
    monitor.stop()
    sched.schedule(5.0, lambda: None)
    sched.run_until(8.0)
    assert len(monitor.series["n"].samples) == count


def test_mean_helpers_empty():
    sched = Scheduler()
    net = Network(sched, RngRegistry(1))
    monitor = ResourceMonitor(sched, net, [], interval=1.0)
    assert monitor.mean_cpu_pct() == 0.0
    assert monitor.mean_net_mbps() == 0.0
