"""Unit tests for the simulated network and fault injection."""

import pytest

from repro.errors import NetworkError
from repro.sim import Network, RngRegistry, Scheduler, SimNode


class Recorder(SimNode):
    """Node that records every handled message."""

    def __init__(self, node_id, scheduler, network, **kwargs):
        super().__init__(node_id, scheduler, network, **kwargs)
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


def make_net(n=3, seed=7, **net_kwargs):
    sched = Scheduler()
    net = Network(sched, RngRegistry(seed), **net_kwargs)
    nodes = [Recorder(f"n{i}", sched, net) for i in range(n)]
    return sched, net, nodes


def test_point_to_point_delivery():
    sched, net, nodes = make_net()
    net.send("n0", "n1", "ping", {"x": 1})
    sched.run()
    assert len(nodes[1].received) == 1
    assert nodes[1].received[0].payload == {"x": 1}
    assert nodes[0].received == []


def test_delivery_has_positive_latency():
    sched, net, nodes = make_net()
    net.send("n0", "n1", "ping", None)
    assert nodes[1].received == []  # not yet delivered
    sched.run()
    assert sched.now > 0.0


def test_larger_messages_take_longer():
    sched, net, _ = make_net(jitter=0.0)
    small = net._delivery_delay("n0", "n1", 100)
    large = net._delivery_delay("n0", "n1", 1_000_000)
    assert large > small


def test_broadcast_excludes_sender_by_default():
    sched, net, nodes = make_net(n=4)
    count = net.broadcast("n0", "gossip", "hello")
    sched.run()
    assert count == 3
    assert nodes[0].received == []
    assert all(len(n.received) == 1 for n in nodes[1:])


def test_unknown_recipient_raises():
    sched, net, _ = make_net()
    with pytest.raises(NetworkError):
        net.send("n0", "ghost", "ping", None)


def test_duplicate_node_id_rejected():
    sched, net, _ = make_net()
    with pytest.raises(NetworkError):
        Recorder("n0", sched, net)


def test_partition_drops_cross_group_traffic():
    sched, net, nodes = make_net(n=4)
    net.partition([["n0", "n1"], ["n2", "n3"]])
    net.send("n0", "n2", "x", None)
    net.send("n0", "n1", "y", None)
    sched.run()
    assert nodes[2].received == []
    assert len(nodes[1].received) == 1
    assert net.stats.dropped_partition == 1


def test_partition_heal_restores_traffic():
    sched, net, nodes = make_net(n=2)
    net.partition([["n0"], ["n1"]])
    net.send("n0", "n1", "x", None)
    sched.run()
    assert nodes[1].received == []
    net.heal()
    net.send("n0", "n1", "x", None)
    sched.run()
    assert len(nodes[1].received) == 1


def test_partition_drops_in_flight_messages():
    sched, net, nodes = make_net(n=2)
    net.send("n0", "n1", "x", None)  # in flight
    net.partition([["n0"], ["n1"]])
    sched.run()
    assert nodes[1].received == []


def test_partition_unknown_node_rejected():
    sched, net, _ = make_net(n=2)
    with pytest.raises(NetworkError):
        net.partition([["n0", "bogus"]])


def test_crashed_node_drops_messages():
    sched, net, nodes = make_net(n=2)
    nodes[1].crash()
    net.send("n0", "n1", "x", None)
    sched.run()
    assert nodes[1].received == []
    assert net.stats.dropped_crash == 1


def test_corruption_marks_messages():
    sched, net, nodes = make_net(n=2)
    net.inject_corruption(1.0)
    net.send("n0", "n1", "x", None)
    sched.run()
    assert nodes[1].received[0].corrupted


def test_corruption_rate_validation():
    _, net, _ = make_net()
    with pytest.raises(NetworkError):
        net.inject_corruption(1.5)


def test_injected_delay_slows_delivery():
    sched1, net1, _ = make_net(seed=3)
    base = net1._delivery_delay("n0", "n1", 100)
    sched2, net2, _ = make_net(seed=3)
    net2.inject_delay(0.5)
    slowed = net2._delivery_delay("n0", "n1", 100)
    assert slowed > base + 0.2


def test_delay_targets_specific_nodes():
    _, net, _ = make_net(n=3, jitter=0.0)
    net.inject_delay(1.0, nodes=["n2"])
    unaffected = net._delivery_delay("n0", "n1", 100)
    affected = net._delivery_delay("n0", "n2", 100)
    assert affected > unaffected + 0.4


def test_traffic_stats_accumulate():
    sched, net, _ = make_net(n=2)
    net.send("n0", "n1", "x", None, size_bytes=1000)
    sched.run()
    assert net.stats.bytes_sent["n0"] == 1000
    assert net.stats.bytes_received["n1"] == 1000
    assert net.stats.messages_delivered == 1


def test_deterministic_given_seed():
    def run():
        sched, net, nodes = make_net(n=3, seed=11)
        for i in range(20):
            net.send("n0", f"n{1 + i % 2}", "m", i)
        sched.run()
        return sched.now

    assert run() == run()
