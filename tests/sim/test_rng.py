"""Unit tests for deterministic RNG streams."""

from repro.sim import RngRegistry, derive_seed


def test_same_seed_same_stream():
    a = RngRegistry(5).stream("x")
    b = RngRegistry(5).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    reg = RngRegistry(5)
    assert reg.stream("x").random() != reg.stream("y").random()


def test_stream_is_cached():
    reg = RngRegistry(5)
    assert reg.stream("x") is reg.stream("x")


def test_fork_changes_master():
    reg = RngRegistry(5)
    child = reg.fork("child")
    assert child.master_seed != reg.master_seed
    assert child.stream("x").random() != reg.stream("x").random()


def test_derive_seed_stable():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
