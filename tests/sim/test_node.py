"""Unit tests for SimNode: serial processing, bounded inbox, timers."""

from repro.sim import Network, RngRegistry, Scheduler, SimNode


class CostlyNode(SimNode):
    """Node whose message handling costs fixed CPU time."""

    def __init__(self, node_id, scheduler, network, cost=0.1, **kwargs):
        super().__init__(node_id, scheduler, network, **kwargs)
        self.cost = cost
        self.handled = []

    def message_cost(self, message):
        return self.cost

    def handle_message(self, message):
        self.handled.append((self.scheduler.now, message.payload))


def build(cost=0.1, capacity=None):
    sched = Scheduler()
    net = Network(sched, RngRegistry(1), jitter=0.0)
    sender = SimNode("src", sched, net)
    node = CostlyNode("dst", sched, net, cost=cost, inbox_capacity=capacity)
    return sched, net, sender, node


def test_messages_processed_serially():
    sched, net, sender, node = build(cost=1.0)
    for i in range(3):
        sender.send("dst", "m", i)
    sched.run()
    times = [t for t, _ in node.handled]
    assert len(times) == 3
    # Each message occupies the CPU for 1s, so completions are >= 1s apart.
    assert times[1] - times[0] >= 1.0
    assert times[2] - times[1] >= 1.0


def test_cpu_time_accounted():
    sched, net, sender, node = build(cost=0.5)
    for i in range(4):
        sender.send("dst", "m", i)
    sched.run()
    assert abs(node.cpu_time - 2.0) < 1e-9


def test_bounded_inbox_drops_overflow():
    sched, net, sender, node = build(cost=10.0, capacity=2)
    for i in range(10):
        sender.send("dst", "m", i)
    sched.run_until(5.0)
    # One message is in processing, two are queued; the rest were dropped.
    assert node.dropped_messages > 0
    assert node.dropped_messages >= 10 - 3 - 1


def test_unbounded_inbox_never_drops():
    sched, net, sender, node = build(cost=10.0, capacity=None)
    for i in range(50):
        sender.send("dst", "m", i)
    sched.run_until(1.0)
    assert node.dropped_messages == 0


def test_zero_cost_messages_processed_same_tick():
    sched, net, sender, node = build(cost=0.0)
    sender.send("dst", "m", "fast")
    sched.run()
    assert node.handled[0][1] == "fast"


def test_crash_stops_processing_and_clears_inbox():
    sched, net, sender, node = build(cost=1.0)
    for i in range(5):
        sender.send("dst", "m", i)
    sched.run_until(0.5)  # first message mid-processing
    node.crash()
    sched.run()
    assert node.handled == []
    assert len(node.inbox) == 0


def test_crashed_node_does_not_send():
    sched, net, sender, node = build()
    node.crash()
    node.send("src", "m", "x")
    sched.run()
    assert net.stats.messages_sent == 0


def test_timer_fires():
    sched, net, sender, node = build()
    fired = []
    node.set_timer(2.0, fired.append, "tick")
    sched.run()
    assert fired == ["tick"]


def test_timer_suppressed_after_crash():
    sched, net, sender, node = build()
    fired = []
    node.set_timer(2.0, fired.append, "tick")
    node.crash()
    sched.run()
    assert fired == []


def test_crash_discards_deferred_cost():
    """Deferred work pending at crash time dies with the process: the
    first post-recovery message must not be charged for it.

    ``defer_cost`` called outside a message handler (a timer callback
    discovering work, e.g. replay) parks cost until the next message
    drain — a crash in that window must drop it."""
    sched, net, sender, node = build(cost=0.0)
    node.defer_cost(10.0)  # timer-context work, not yet drained
    node.crash()
    assert node._deferred_cost == 0.0
    node.recover()
    sender.send("dst", "m", "after")
    sched.run()
    assert node.handled[-1][1] == "after"
    # The post-recovery message was processed without inheriting the
    # pre-crash 10s busy window.
    assert sched.now < 10.0
    assert node.cpu_time == 0.0


def test_recover_allows_new_work():
    sched, net, sender, node = build(cost=0.0)
    node.crash()
    node.recover()
    sender.send("dst", "m", "after")
    sched.run()
    assert node.handled[0][1] == "after"
